"""Point-to-point message passing over the simulated cluster.

A :class:`SimComm` binds a set of ranks to cluster nodes; each rank's
program talks through its :class:`Endpoint`.  All endpoint operations
that take time are generators meant to be driven with ``yield from``::

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=7, payload=np.arange(4.0))
        else:
            data, status = yield from ep.recv(0, tag=7)

Cost model (per message):

* sender CPU: ``cpu_per_msg + nbytes * cpu_per_byte`` work units,
  charged as ordinary :class:`Compute` so it competes with the
  application and with competing processes — this is the Section 4.3
  effect;
* wire: latency + serialized bandwidth (see
  :class:`~repro.simcluster.network.Network`);
* receiver CPU: same as sender, charged when the message is consumed.

Messages at or below the eager threshold complete at the sender once
injected; larger messages use a rendezvous (RTS → CTS → data) and the
sender blocks until the data transfer completes, which matches
synchronous-mode large sends in common MPI implementations.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

import numpy as np

from ..errors import MPIError, RankFailedError
from ..simcluster import Cluster, Compute, ProcState, Signal, Wait
from .datatypes import payload_nbytes
from .group import COLL_TAG_BASE
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["SimComm", "Endpoint", "Request"]

#: wire size of RTS/CTS control messages
_CTRL_BYTES = 64


def _obs_tag(tag: int) -> int:
    """Tag value safe to record in a trace.  Tags below the collective
    base are caller-chosen and stable; collective tags embed a
    process-global group id, so they are masked to keep traces of
    identical runs byte-reproducible."""
    return tag if 0 <= tag < COLL_TAG_BASE else -1

#: sentinel fired through signals touching a dead rank (resilience)
_POISON = object()


class _Envelope:
    __slots__ = (
        "src", "dst", "tag", "payload", "nbytes",
        "rendezvous", "data_ready", "data_signal", "sent_signal", "seq",
        "poison",
    )

    def __init__(self, src: int, dst: int, tag: int, payload: Any, nbytes: int):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.rendezvous = False
        self.data_ready = True
        self.data_signal: Optional[Signal] = None
        self.sent_signal: Optional[Signal] = None
        self.seq = 0
        #: set on synthetic envelopes delivered to receivers blocked on
        #: a rank that died: the receive raises RankFailedError
        self.poison = False

    def matches(self, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, self.src)) and (tag in (ANY_TAG, self.tag))


class _PendingRecv:
    __slots__ = ("source", "tag", "signal")

    def __init__(self, source: int, tag: int, signal: Signal):
        self.source = source
        self.tag = tag
        self.signal = signal


class Request:
    """Handle for a non-blocking operation; drive with ``yield from
    req.wait()``."""

    def __init__(self, ep: "Endpoint"):
        self._ep = ep
        self._done = False
        self._value: Any = None
        self._signal: Optional[Signal] = None
        #: set when the peer rank died before the op could complete;
        #: ``wait()`` then raises RankFailedError instead of returning
        self._failed_rank: Optional[int] = None

    def _complete(self, value: Any) -> None:
        self._done = True
        self._value = value
        if self._signal is not None and not self._signal.fired:
            self._signal.fire(value)

    def test(self) -> bool:
        return self._done

    def wait(self) -> Generator:
        if not self._done:
            if self._signal is None:
                self._signal = self._ep.comm.sim.signal("req")
                if self._done:  # completed in between (defensive)
                    self._signal.fire(self._value)
            value = yield Wait(self._signal)
            if self._failed_rank is not None:
                raise RankFailedError(self._failed_rank)
            return value
        if self._failed_rank is not None:
            raise RankFailedError(self._failed_rank)
        return self._value
        yield  # pragma: no cover - keeps this a generator


class SimComm:
    """A communicator: ``size`` ranks placed on cluster nodes."""

    def __init__(self, cluster: Cluster, rank_to_node: list[int]):
        if not rank_to_node:
            raise MPIError("communicator needs at least one rank")
        for node in rank_to_node:
            if not (0 <= node < cluster.n_nodes):
                raise MPIError(f"rank mapped to invalid node {node}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.net = cluster.network
        self.rank_to_node = list(rank_to_node)
        self.size = len(rank_to_node)
        self._mailboxes: list[list[_Envelope]] = [[] for _ in range(self.size)]
        self._pending: list[list[_PendingRecv]] = [[] for _ in range(self.size)]
        self._endpoints = [Endpoint(self, r) for r in range(self.size)]
        self._seq = itertools.count()
        #: ranks whose process died (resilience fail-fast poisoning)
        self._dead: set[int] = set()
        #: RMA windows (repro.mpi.rma) registered on this communicator;
        #: rank death must release their lock state too
        self._windows: list = []
        # communication sanitizer (repro.analysis), or None when off
        self.san = getattr(cluster, "sanitizer", None)
        # dynscope trace recorder (repro.obs), or None when off
        self.obs = getattr(cluster, "obs", None)
        #: wildcard receives that found queued candidates from ≥2
        #: distinct sources — each one is a matching the MPI standard
        #: leaves undefined (the dynrace DYN701 condition, observed)
        self.match_ties = 0
        #: recycled eager envelopes (slab reuse): blocking receives
        #: return consumed plain envelopes here and the send paths
        #: reuse them, saving an allocation per message on the hot
        #: path.  Disabled under the sanitizer, which keys state on
        #: envelope identity.
        self._env_pool: list[_Envelope] = []

    def _new_envelope(self, src: int, dst: int, tag: int, payload: Any,
                      nbytes: int) -> _Envelope:
        pool = self._env_pool
        if pool:
            env = pool.pop()
            env.src = src
            env.dst = dst
            env.tag = tag
            env.payload = payload
            env.nbytes = nbytes
            env.rendezvous = False
            env.data_ready = True
            env.data_signal = None
            env.sent_signal = None
            env.seq = 0
            env.poison = False
            return env
        return _Envelope(src, dst, tag, payload, nbytes)

    def _release_envelope(self, env: _Envelope) -> None:
        """Recycle a fully-consumed plain (eager, non-poison) envelope.
        Callers must have extracted payload and status already."""
        if len(self._env_pool) < 256:
            env.payload = None
            self._env_pool.append(env)

    def endpoint(self, rank: int) -> "Endpoint":
        if not (0 <= rank < self.size):
            raise MPIError(f"bad rank {rank} (size {self.size})")
        return self._endpoints[rank]

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    # ------------------------------------------------------------------
    # dead-endpoint poisoning (repro.resilience fail-fast path)
    # ------------------------------------------------------------------
    def watch_rank(self, rank: int, proc) -> None:
        """Mark ``rank`` dead the moment ``proc`` dies, so survivors
        blocked on it get :class:`RankFailedError` instead of a hang.

        Wired by ``DynMPIJob.launch``; raw :func:`make_comm` users keep
        the undecorated behavior (a killed peer then shows up as a
        plain deadlock).
        """
        def on_done(_value) -> None:
            if proc.state == ProcState.FAILED:
                self.mark_rank_dead(rank)
        proc.done_signal.add_waiter(on_done)

    def rank_failed(self, rank: int) -> bool:
        return rank in self._dead

    def dead_ranks(self) -> list[int]:
        return sorted(self._dead)

    def mark_rank_dead(self, rank: int) -> None:
        """Poison every operation blocked on — or queued for — ``rank``."""
        if rank in self._dead:
            return
        self._dead.add(rank)
        if self.san is not None:
            self.san.mark_dead(rank)
        # RMA windows: release the dead rank's lock holds and queued
        # lock requests so survivors' epochs can still be granted
        for win in self._windows:
            win._on_rank_dead(rank)
        # the dead rank's own posted receives can never be resumed
        self._pending[rank].clear()
        # senders parked in a rendezvous with the dead receiver unblock
        # with a poisoned completion
        for env in self._mailboxes[rank]:
            if env.sent_signal is not None and not env.sent_signal.fired:
                env.sent_signal.fire(_POISON)
        self._mailboxes[rank].clear()
        # survivors blocked on an exact-source receive from the dead
        # rank get a poison envelope (ANY_SOURCE stays matchable)
        for dst in range(self.size):
            if dst == rank:
                continue
            keep = []
            for pr in self._pending[dst]:
                if pr.source == rank:
                    poison = _Envelope(rank, dst, pr.tag, None, 0)
                    poison.poison = True
                    pr.signal.fire(poison)
                else:
                    keep.append(pr)
            self._pending[dst][:] = keep

    # ------------------------------------------------------------------
    # delivery plumbing (runs inside network callbacks)
    # ------------------------------------------------------------------
    def _deliver(self, env: _Envelope) -> None:
        if env.dst in self._dead:
            # late arrival for a dead receiver: unblock a rendezvous
            # sender with a poisoned completion, drop the message
            if env.sent_signal is not None and not env.sent_signal.fired:
                env.sent_signal.fire(_POISON)
            return
        pending = self._pending[env.dst]
        for i, req in enumerate(pending):
            if env.matches(req.source, req.tag):
                del pending[i]
                if self.san is not None:
                    self.san.on_match(env, env.dst, req.source, req.tag,
                                      post_key=id(req))
                req.signal.fire(env)
                return
        self._mailboxes[env.dst].append(env)

    def _try_match(self, rank: int, source: int, tag: int) -> Optional[_Envelope]:
        box = self._mailboxes[rank]
        pick = -1
        for i, env in enumerate(box):
            if env.matches(source, tag):
                pick = i
                break
        if pick < 0:
            return None
        if source == ANY_SOURCE:
            # An ANY_SOURCE receive with queued messages from several
            # sources is a matching MPI leaves undefined: non-overtaking
            # only orders messages *per source pair*, so any source's
            # earliest eligible envelope may win.  Surface the tie (a
            # counter here, a per-rank metric in the trace) and, when
            # the kernel's perturbation is armed, resolve it by seed
            # instead of arrival order — that flip is exactly what turns
            # a DYN701 race into a byte-level trace diff.  An exact
            # source (even with ANY_TAG) has a defined winner: the
            # earliest match from that source; nothing to perturb.
            candidates = []
            seen: set[int] = set()
            for i, env in enumerate(box):
                if env.matches(source, tag) and env.src not in seen:
                    seen.add(env.src)
                    candidates.append(i)
            if len(candidates) > 1:
                self.match_ties += 1
                if self.obs is not None:
                    self.obs.rank_registry(rank).count("mpi.match_ties", 1)
                perturb = self.sim.perturb
                if perturb is not None:
                    key = (rank, tag, tuple(box[i].seq for i in candidates))
                    pick = candidates[perturb.choose(len(candidates), key)]
        env = box.pop(pick)
        if self.san is not None:
            self.san.on_match(env, rank, source, tag)
        return env


class Endpoint:
    """One rank's view of a :class:`SimComm`.

    The process driving an endpoint must live on the node the rank is
    mapped to; the launcher guarantees this.
    """

    def __init__(self, comm: SimComm, rank: int):
        self.comm = comm
        self.rank = rank
        self.node_id = comm.node_of(rank)

    # ------------------------------------------------------------------
    # blocking point-to-point
    # ------------------------------------------------------------------
    def send(
        self,
        dest: int,
        tag: int = 0,
        payload: Any = None,
        nbytes: Optional[int] = None,
    ) -> Generator:
        """Blocking send.  Eager below the threshold, rendezvous above."""
        nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)
        obs = self.comm.obs
        if obs is None:
            yield from self._send(dest, tag, payload, nbytes)
            return None
        t0 = obs.now()
        try:
            yield from self._send(dest, tag, payload, nbytes)
        finally:
            obs.complete(
                "mpi.send", t0, cat="mpi", pid=self.node_id, tid=self.rank,
                dst=dest, nbytes=nbytes, tag=_obs_tag(tag),
            )
            reg = obs.rank_registry(self.rank)
            reg.count("mpi.messages_sent", 1)
            reg.count("mpi.bytes_sent", nbytes)
            reg.observe("mpi.send_seconds", obs.now() - t0)
        return None

    def _send(self, dest: int, tag: int, payload: Any, nbytes: int) -> Generator:
        comm = self.comm
        if not (0 <= dest < comm.size):
            raise MPIError(f"send to invalid rank {dest}")
        if dest in comm._dead:
            raise RankFailedError(dest, "send to")
        payload = _detach(payload)

        env = comm._new_envelope(self.rank, dest, tag, payload, nbytes)
        env.seq = next(comm._seq)
        san = comm.san
        yield Compute(comm.net.cpu_cost(nbytes))

        if nbytes <= comm.net.spec.eager_threshold:
            if san is not None:
                san.on_send(env)
            comm.net.transmit(
                self.node_id, comm.node_of(dest), nbytes,
                lambda: comm._deliver(env),
            )
            return None

        # rendezvous: send RTS, block until the receiver has matched and
        # the data transfer has completed.
        env.rendezvous = True
        env.data_ready = False
        env.data_signal = comm.sim.signal("rdv-data")
        env.sent_signal = comm.sim.signal("rdv-sent")
        if san is not None:
            san.on_send(env)
        comm.net.transmit(
            self.node_id, comm.node_of(dest), _CTRL_BYTES,
            lambda: comm._deliver(env),
        )
        if san is not None:
            san.on_block(self.rank, "send-rdv", dest, tag, env=env)
        result = yield Wait(env.sent_signal)
        if san is not None:
            san.on_unblock(self.rank)
        if result is _POISON:
            raise RankFailedError(dest, "send to")
        return None

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Generator:
        """Blocking receive; returns ``(payload, Status)``.

        In ``recv_mode="polling"`` the receiver busy-waits: it burns
        CPU in poll chunks and only notices the message when it next
        holds the CPU — so on a loaded node an arrived message can sit
        unnoticed for several competing quanta, exactly the ch_p4
        behavior behind the paper's node-removal results.
        """
        obs = self.comm.obs
        if obs is None:
            result = yield from self._recv(source, tag)
            return result
        t0 = obs.now()
        payload, status = yield from self._recv(source, tag)
        obs.complete(
            "mpi.recv", t0, cat="mpi", pid=self.node_id, tid=self.rank,
            src=status.source, nbytes=status.nbytes, tag=_obs_tag(tag),
        )
        reg = obs.rank_registry(self.rank)
        reg.count("mpi.messages_received", 1)
        reg.count("mpi.bytes_received", status.nbytes)
        reg.observe("mpi.recv_seconds", obs.now() - t0)
        return payload, status

    def _recv(self, source: int, tag: int) -> Generator:
        comm = self.comm
        san = comm.san
        if source != ANY_SOURCE and source in comm._dead:
            raise RankFailedError(source, "receive from")
        env = comm._try_match(self.rank, source, tag)
        if env is None:
            if comm.net.spec.recv_mode == "polling":
                node = comm.cluster.nodes[self.node_id]
                chunk = node.spec.quantum * 0.01 * node.spec.speed
                if san is not None:
                    san.on_block(self.rank, "recv-poll", source, tag)
                while True:
                    yield Compute(chunk)
                    if source != ANY_SOURCE and source in comm._dead:
                        if san is not None:
                            san.on_unblock(self.rank)
                        raise RankFailedError(source, "receive from")
                    env = comm._try_match(self.rank, source, tag)
                    if env is not None:
                        break
                if san is not None:
                    san.on_unblock(self.rank)
            else:
                sig = comm.sim.signal("recv")
                pr = _PendingRecv(source, tag, sig)
                comm._pending[self.rank].append(pr)
                if san is not None:
                    san.on_recv_posted(id(pr), self.rank, source, tag)
                    san.on_block(self.rank, "recv", source, tag)
                env = yield Wait(sig)
                if san is not None:
                    san.on_unblock(self.rank)
        if env.poison:
            raise RankFailedError(env.src, "receive from")
        if env.rendezvous and not env.data_ready:
            yield from self._pull_rendezvous(env)
        yield Compute(comm.net.cpu_cost(env.nbytes))
        payload, status = env.payload, Status(env.src, env.tag, env.nbytes)
        if san is None and not env.rendezvous:
            comm._release_envelope(env)
        return payload, status

    def _pull_rendezvous(self, env: _Envelope) -> Generator:
        """CTS back to the sender, then wait for the bulk data."""
        comm = self.comm
        src_node = comm.node_of(env.src)

        def on_cts() -> None:
            # sender starts the bulk transfer on CTS arrival
            comm.net.transmit(
                src_node, self.node_id, env.nbytes,
                lambda: _finish_rendezvous(env),
            )

        def _finish_rendezvous(env: _Envelope) -> None:
            env.data_ready = True
            env.data_signal.fire(None)
            env.sent_signal.fire(None)

        comm.net.transmit(self.node_id, src_node, _CTRL_BYTES, on_cts)
        if comm.san is not None:
            comm.san.on_block(self.rank, "recv-data", env.src, env.tag)
        yield Wait(env.data_signal)
        if comm.san is not None:
            comm.san.on_unblock(self.rank)

    def sendrecv(
        self,
        dest: int,
        send_tag: int,
        payload: Any,
        source: int,
        recv_tag: int,
        nbytes: Optional[int] = None,
    ) -> Generator:
        """Combined send+recv without deadlock (send first, non-blocking
        semantics through eager/rendezvous machinery)."""
        sreq = self.isend(dest, send_tag, payload, nbytes=nbytes)
        result = yield from self.recv(source, recv_tag)
        yield from sreq.wait()
        return result

    # ------------------------------------------------------------------
    # non-blocking
    # ------------------------------------------------------------------
    def isend(
        self,
        dest: int,
        tag: int = 0,
        payload: Any = None,
        nbytes: Optional[int] = None,
    ) -> Request:
        """Non-blocking send.  CPU cost is charged on ``wait()``
        completion for rendezvous messages and immediately queued for
        eager ones."""
        comm = self.comm
        if not (0 <= dest < comm.size):
            raise MPIError(f"send to invalid rank {dest}")
        req = Request(self)
        if dest in comm._dead:
            req._failed_rank = dest
            req._complete(None)
            return req
        nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)
        payload = _detach(payload)
        env = comm._new_envelope(self.rank, dest, tag, payload, nbytes)
        env.seq = next(comm._seq)
        if comm.san is not None:
            comm.san.on_send(env)
        if comm.obs is not None:
            reg = comm.obs.rank_registry(self.rank)
            reg.count("mpi.messages_sent", 1)
            reg.count("mpi.bytes_sent", nbytes)

        # The CPU cost of injecting is charged through a shadow compute
        # job on this rank's node: it contends for the CPU without
        # blocking the caller, approximating kernel/DMA offload under
        # load.
        node = comm.cluster.nodes[self.node_id]

        def after_cpu() -> None:
            if nbytes <= comm.net.spec.eager_threshold:
                comm.net.transmit(
                    self.node_id, comm.node_of(dest), nbytes,
                    lambda: (comm._deliver(env), req._complete(None)),
                )
            else:
                env.rendezvous = True
                env.data_ready = False
                env.data_signal = comm.sim.signal("irdv-data")
                env.sent_signal = comm.sim.signal("irdv-sent")

                def on_sent(value) -> None:
                    if value is _POISON:
                        req._failed_rank = dest
                    req._complete(None)

                env.sent_signal.add_waiter(on_sent)
                comm.net.transmit(
                    self.node_id, comm.node_of(dest), _CTRL_BYTES,
                    lambda: comm._deliver(env),
                )

        shadow = _ShadowProc(f"isend:{self.rank}->{dest}")
        node.cpu.submit(shadow, comm.net.cpu_cost(nbytes), after_cpu)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` returns ``(payload, Status)``."""
        comm = self.comm
        req = Request(self)
        if source != ANY_SOURCE and source in comm._dead:
            req._failed_rank = source
            req._complete(None)
            return req
        env = comm._try_match(self.rank, source, tag)

        def finish(env: _Envelope) -> None:
            if env.poison:
                req._failed_rank = env.src
                req._complete(None)
            elif env.rendezvous and not env.data_ready:
                # complete the handshake from a callback context
                src_node = comm.node_of(env.src)

                def on_cts() -> None:
                    comm.net.transmit(
                        src_node, self.node_id, env.nbytes,
                        lambda: done(env),
                    )

                def done(env: _Envelope) -> None:
                    env.data_ready = True
                    env.data_signal.fire(None)
                    env.sent_signal.fire(None)
                    req._complete((env.payload, Status(env.src, env.tag, env.nbytes)))

                comm.net.transmit(self.node_id, src_node, _CTRL_BYTES, on_cts)
            else:
                req._complete((env.payload, Status(env.src, env.tag, env.nbytes)))

        if env is not None:
            finish(env)
        else:
            sig = comm.sim.signal("irecv")
            pr = _PendingRecv(source, tag, sig)
            comm._pending[self.rank].append(pr)
            if comm.san is not None:
                comm.san.on_recv_posted(id(pr), self.rank, source, tag)
            sig.add_waiter(finish)
        return req

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe: Status of the first matching queued
        message, or None.  Costs nothing (a poll)."""
        for env in self.comm._mailboxes[self.rank]:
            if env.matches(source, tag):
                return Status(env.src, env.tag, env.nbytes)
        return None

    # convenience -----------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint rank={self.rank}/{self.size} node={self.node_id}>"


class _ShadowProc:
    """Phantom schedulable entity for offloaded (isend) CPU charges."""

    __slots__ = ("name", "state", "cpu_time")

    def __init__(self, name: str):
        self.name = name
        self.state = "ready"
        self.cpu_time = 0.0


def _detach(payload: Any) -> Any:
    """Copy mutable numpy buffers so post-send mutation by the sender
    cannot corrupt in-flight messages (MPI buffer semantics)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload
