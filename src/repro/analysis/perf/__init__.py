"""dynperf — interprocedural hot-path cost analysis.

The fifth static layer of the analysis suite.  PR 8 rebuilt the DES
hot path for 1000-rank scenarios; dynperf is the guard that keeps
those constant factors from silently creeping back.  It infers the
**hot zone** — every function reachable from the kernel event loop,
``SimComm._try_match``/``_deliver``, per-NIC serialization, and the
per-cycle runtime/balance/redistribute path (:mod:`.hotzone`) — and
runs per-iteration cost rules (DYN1001–DYN1006, :mod:`.rules`) only
inside it, scaled by a static *heat* score derived from loop-nesting
depth along call chains.

Optionally, ``--profile trace.json`` joins a dynscope trace export:
measured per-phase exclusive time re-ranks the report so the
subsystems that actually burn the cycles sort first, and each finding
records the measured share of its phase as evidence.

Usage::

    python -m repro.analysis perf src/repro examples
    python -m repro.analysis perf --json --profile trace.json src
    python -m repro.analysis perf --baseline perf.json src

Suppress a finding with ``# dynperf: ok`` on its line (justify it in
a comment), or carry a baseline file (``--write-baseline`` /
``--baseline``).  Declare a new hot root with ``# dynperf: hot`` on
its ``def`` line.  Exit codes: 0 clean, 1 findings, 2 usage/internal
error or a blown ``--max-seconds`` budget.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Optional

from ..flow.callgraph import load_registry
from ..flow.report import (
    findings_to_json,
    load_baseline,
    render_findings,
    save_baseline,
)
from .hotzone import (
    HOT_DIRECTIVE,
    HotFunc,
    HotZone,
    infer_hot_zone,
    load_profile,
)
from .rules import PERF_CODES, SUPPRESS_MARK, check_function

__all__ = [
    "PERF_CODES",
    "SUPPRESS_MARK",
    "HOT_DIRECTIVE",
    "HotFunc",
    "HotZone",
    "analyze_perf_paths",
    "infer_hot_zone",
    "load_profile",
    "run_perf",
]


def analyze_perf_paths(
    paths: Iterable,
    profile: Optional[dict] = None,
) -> tuple:
    """Infer the hot zone over ``paths`` and run the cost rules in it.

    Returns ``(findings, zone)``; findings are sorted by (path, line,
    code), then — when ``profile`` phase shares are given — stably
    re-ranked hottest-measured-phase first, with each finding's
    ``detail`` carrying ``profile_share`` for its phase.  Line-level
    ``# dynperf: ok`` suppressions are already applied; baseline
    filtering is the caller's.
    """
    registry = load_registry(paths)
    zone = infer_hot_zone(registry)
    findings = []
    for key in sorted(zone.functions):
        hf = zone.functions[key]
        mod = registry.modules.get(hf.info.module)
        if mod is None:
            continue
        findings.extend(check_function(hf, mod, registry))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    if profile:
        for f in findings:
            f.detail["profile_share"] = round(
                profile.get(f.detail.get("phase", "other"), 0.0), 4
            )
        findings.sort(
            key=lambda f: -f.detail["profile_share"]
        )  # stable: static order breaks ties
    return findings, zone


def run_perf(
    paths: Iterable,
    *,
    json_out: bool = False,
    quiet: bool = False,
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
    max_seconds: Optional[float] = None,
    profile: Optional[str] = None,
    stream=None,
) -> int:
    """CLI driver.  Exit codes: 0 clean, 1 findings, 2 usage or
    internal error (unreadable ``--profile`` trace, blown
    ``--max-seconds`` budget)."""
    out = stream if stream is not None else sys.stdout
    t0 = time.monotonic()
    shares = None
    if profile:
        try:
            shares = load_profile(profile)
        except (OSError, ValueError, KeyError) as exc:
            print(f"dynperf: cannot load profile {profile}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        findings, zone = analyze_perf_paths(paths, profile=shares)
    except Exception as exc:  # internal error, not a finding
        print(f"dynperf: internal error: {exc!r}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - t0

    if write_baseline:
        save_baseline(write_baseline, findings, tool="dynperf")

    suppressed = 0
    if baseline:
        known = load_baseline(baseline)
        kept = [f for f in findings if f.fingerprint not in known]
        suppressed = len(findings) - len(kept)
        findings = kept

    if json_out:
        import json as _json

        payload = findings_to_json(
            findings, suppressed=suppressed, elapsed=elapsed
        )
        payload["tool"] = "dynperf"
        payload["hot_functions"] = len(zone)
        if shares is not None:
            payload["profile"] = {
                k: round(v, 4) for k, v in sorted(shares.items())
            }
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
    elif findings:
        print(render_findings(findings), file=out)
        if not quiet:
            print(
                f"dynperf: {len(findings)} finding(s) in "
                f"{len(zone)} hot function(s)"
                + (f", {suppressed} baselined" if suppressed else ""),
                file=out,
            )
    elif not quiet:
        print(
            f"dynperf: clean ({len(zone)} hot functions"
            + (f", {suppressed} baselined" if suppressed else "")
            + f") [{elapsed:.2f}s]",
            file=out,
        )

    if max_seconds is not None and elapsed > max_seconds:
        print(
            f"dynperf: analysis took {elapsed:.1f}s, over the "
            f"--max-seconds {max_seconds:g} budget",
            file=sys.stderr,
        )
        return 2
    return 1 if findings else 0
