"""The dynperf cost rules (DYN1001–DYN1006).

Rules only fire inside the inferred hot zone (:mod:`.hotzone`), and
most only once the *site heat* — the containing function's heat plus
the local loop-nesting depth at the site — clears a threshold.  That
is the whole design: ``[x] * n`` is idiomatic in setup code and a
regression in ``_try_match``; the rule set is deliberately too noisy
for a whole-tree lint and exactly right for the per-event path.

=========  ========================================================
code       meaning
=========  ========================================================
DYN1001    allocation in a hot loop: list/set/dict/np construction,
           a comprehension, or ``+`` on sequences, repeated per
           event — hoist it or reuse a buffer
DYN1002    linear scan on the per-event path: ``in``/``not in``
           against a list, ``list.remove/index/count``,
           ``pop(0)``/``insert(0, ...)`` — use a set/dict/deque
DYN1003    nested iteration over ranks × rows/ranks — quadratic in
           world size on a path that runs per cycle
DYN1004    loop-invariant work inside a hot loop: a call whose
           arguments don't change across iterations, or a deep
           attribute chain re-resolved every pass — hoist it
DYN1005    exception-based control flow or eager string formatting
           (f-string/.format/%%/logging) on the per-event path
DYN1006    result of an expensive pure call discarded — dead work
           in the hot zone
=========  ========================================================

Suppress with ``# dynperf: ok`` on the finding's line (justify it in
a comment); the mark comes from the shared zone registry
(:mod:`repro.analysis.zones`).
"""

from __future__ import annotations

import ast
from typing import Optional

from ..zones import ZONES
from ..flow.callgraph import FuncInfo, ModuleInfo, Registry
from ..flow.cfg import loop_depth_map
from ..flow.report import FlowFinding
from .hotzone import HotFunc

__all__ = ["PERF_CODES", "SUPPRESS_MARK", "check_function"]

SUPPRESS_MARK = ZONES["perf"].suppress_mark

#: one-line summaries (the cross-analyzer table is
#: ``repro.analysis.flow.report.CODES``; keep the two in sync)
PERF_CODES = {
    "DYN1001": "allocation inside a hot loop",
    "DYN1002": "linear scan on the per-event path",
    "DYN1003": "nested rank iteration (quadratic in world size)",
    "DYN1004": "loop-invariant work repeated inside a hot loop",
    "DYN1005": "exception control flow or eager formatting per event",
    "DYN1006": "expensive call result discarded in the hot zone",
}

#: site heat (function heat + local loop depth) needed per rule; the
#: per-iteration rules want an actual loop around the site, the scan
#: and dead-work rules bite anywhere hot
_MIN_SITE_HEAT = {
    "DYN1001": 2,
    "DYN1002": 1,
    "DYN1003": 1,
    "DYN1004": 2,
    "DYN1005": 2,
    "DYN1006": 1,
}

_ALLOC_BUILTINS = frozenset({"list", "dict", "set", "tuple"})
_NP_CTORS = frozenset({
    "zeros", "ones", "empty", "full", "array", "arange", "linspace",
    "concatenate", "copy", "stack",
})
_NP_BASES = frozenset({"np", "numpy"})
_PURE_BUILTINS = frozenset({
    "sorted", "sum", "min", "max", "len", "abs", "round", "list",
    "dict", "set", "tuple", "enumerate", "zip", "reversed",
})
_HOISTABLE_BUILTINS = frozenset({"sorted", "sum", "min", "max", "tuple"})
_CHEAP_EXC = frozenset({
    "KeyError", "IndexError", "AttributeError", "ValueError",
    "StopIteration",
})
_LOG_METHODS = frozenset({"debug", "info", "warning", "error", "log"})
_LOG_BASES = frozenset({"logging", "log", "logger"})

#: identifier fragments that say "this iterates over the world"
_RANK_WORDS = ("rank", "size", "world", "nodes", "peers", "group",
               "active", "procs", "members")
#: fragments for the inner dimension of a rank × data nest
_ROW_WORDS = ("row", "bounds", "intervals", "lo", "hi", "shape",
              "srcs", "dsts")

_COMPS = (ast.ListComp, ast.SetComp, ast.DictComp)


def _mentions(node: ast.AST, words) -> bool:
    for n in ast.walk(node):
        ident = ""
        if isinstance(n, ast.Name):
            ident = n.id
        elif isinstance(n, ast.Attribute):
            ident = n.attr
        elif isinstance(n, ast.arg):
            ident = n.arg
        if ident:
            low = ident.lower()
            if any(w in low for w in words):
                return True
    return False


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted text of a pure ``Name.attr.attr...`` chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_text(call: ast.Call) -> str:
    chain = _attr_chain(call.func)
    return f"{chain or '<expr>'}(...)"


class _LoopFrame:
    """One enclosing loop: the names it (re)binds — the invariance
    frontier for DYN1004 — plus per-loop dedup sets."""

    def __init__(self, node: ast.AST):
        self.node = node
        self.bound: set = set()
        self.flagged_chains: set = set()
        self.flagged_calls: set = set()
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    self.bound.add(n.id)
        body = getattr(node, "body", []) + getattr(node, "orelse", [])
        stack = list(body)
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
                continue
            if isinstance(n, ast.Name) and isinstance(
                n.ctx, (ast.Store, ast.Del)
            ):
                self.bound.add(n.id)
            elif isinstance(n, ast.arg):
                self.bound.add(n.arg)
            stack.extend(ast.iter_child_nodes(n))


class _RuleWalker:
    """Single pass over one hot function's own body (nested defs are
    their own hot-zone entries), tracking enclosing loops, list-typed
    locals, and raise/assert context."""

    def __init__(self, hf: HotFunc, mod: ModuleInfo, registry: Registry):
        self.hf = hf
        self.fi: FuncInfo = hf.info
        self.mod = mod
        self.registry = registry
        self.depths = loop_depth_map(self.fi.node)
        self.loops: list[_LoopFrame] = []
        self.listy: set = set()       # locals known list-typed
        self.in_raise = 0
        #: inside an if-branch or except-handler: formatting there is
        #: already guarded — the fix DYN1005 would suggest
        self.guarded = 0
        self.findings: list[FlowFinding] = []
        self._anchors: dict = {}

    # -- emission -----------------------------------------------------
    def _emit(self, code: str, node: ast.AST, message: str,
              anchor: str, hint: str = "") -> None:
        line = getattr(node, "lineno", self.fi.node.lineno)
        # mark on the finding's line, or the line above it — multi-line
        # expressions have no room for a trailing comment
        if (SUPPRESS_MARK in self.mod.line(line)
                or SUPPRESS_MARK in self.mod.line(line - 1)):
            return
        seq = self._anchors.get((code, anchor), 0)
        self._anchors[(code, anchor)] = seq + 1
        if seq:
            anchor = f"{anchor}#{seq + 1}"
        detail = {
            "heat": self._site_heat(node),
            "zone_kind": self.hf.kind,
            "phase": self.hf.phase,
        }
        if self.hf.via:
            detail["via"] = self.hf.via
        self.findings.append(FlowFinding(
            path=self.fi.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            code=code,
            function=self.fi.qualname,
            message=message,
            anchor=anchor,
            hint=hint,
            detail=detail,
        ))

    def _site_heat(self, node: ast.AST) -> int:
        return self.hf.heat + self.depths.get(id(node), len(self.loops))

    def _hot(self, code: str, node: ast.AST) -> bool:
        return self._site_heat(node) >= _MIN_SITE_HEAT[code]

    def _in_loop(self) -> bool:
        return bool(self.loops)

    # -- type scraps --------------------------------------------------
    def _is_listy(self, node: ast.AST) -> bool:
        """Syntactically a list: literal, list()/sorted() result,
        list comprehension, or a local assigned from one."""
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "sorted")
        if isinstance(node, ast.Name):
            return node.id in self.listy
        return False

    def _note_assign(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self._is_listy(value):
                self.listy.add(target.id)
            else:
                self.listy.discard(target.id)

    # -- walk ---------------------------------------------------------
    def run(self) -> list:
        for stmt in self.fi.node.body:
            self.visit(stmt)
        return self.findings

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        handler = getattr(self, f"visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
        else:
            self.check_expr(node)
            for child in ast.iter_child_nodes(node):
                self.visit(child)

    def generic_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for t in node.targets:
            self._note_assign(t, node.value)
            self.visit(t)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._note_assign(node.target, node.value)

    def _visit_loop(self, node) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit(node.iter)
            self._check_nested_rank_loop(node)
        else:
            self.visit(node.test)
        frame = _LoopFrame(node)
        self.loops.append(frame)
        for stmt in node.body:
            self.visit(stmt)
        self.loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self.guarded += 1
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self.guarded -= 1

    def visit_Try(self, node: ast.Try) -> None:
        caught = []
        for h in node.handlers:
            types = []
            if isinstance(h.type, ast.Name):
                types = [h.type.id]
            elif isinstance(h.type, ast.Tuple):
                types = [e.id for e in h.type.elts
                         if isinstance(e, ast.Name)]
            caught.extend(t for t in types if t in _CHEAP_EXC)
        if caught and self._in_loop() and self._hot("DYN1005", node):
            self._emit(
                "DYN1005", node,
                f"try/except {'/'.join(sorted(set(caught)))} as control "
                f"flow inside a hot loop (site heat "
                f"{self._site_heat(node)}) — raising is ~100x a dict hit",
                anchor=f"try:{'/'.join(sorted(set(caught)))}",
                hint="use .get()/membership tests on the per-event path",
            )
        for stmt in node.body:
            self.visit(stmt)
        self.guarded += 1  # handler/else bodies are off the happy path
        for h in node.handlers:
            for stmt in h.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self.guarded -= 1
        for stmt in node.finalbody:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        self.in_raise += 1
        self.generic_children(node)
        self.in_raise -= 1

    visit_Assert = visit_Raise

    def visit_Expr(self, node: ast.Expr) -> None:
        # bare-expression statement: DYN1006 discarded results
        v = node.value
        if self._hot("DYN1006", v):
            if isinstance(v, _COMPS + (ast.GeneratorExp,)):
                self._emit(
                    "DYN1006", v,
                    "comprehension built and discarded on the hot path",
                    anchor="comp:discarded",
                    hint="drop it, or keep the result if it was meant",
                )
            elif isinstance(v, ast.Call):
                name = None
                if isinstance(v.func, ast.Name):
                    name = v.func.id
                elif (isinstance(v.func, ast.Attribute)
                      and isinstance(v.func.value, ast.Name)
                      and v.func.value.id in _NP_BASES):
                    name = v.func.attr if v.func.attr in _NP_CTORS else None
                if name in _PURE_BUILTINS or (
                    name in _NP_CTORS
                    and isinstance(v.func, ast.Attribute)
                ):
                    self._emit(
                        "DYN1006", v,
                        f"result of {_call_text(v)} discarded — pure "
                        "work with no effect",
                        anchor=f"discard:{_call_text(v)}",
                        hint="delete the statement or use the value",
                    )
        # still descend: the call's arguments can trip other rules,
        # and DYN1004 must know this call's result is unused
        self.check_expr(v, result_used=False)
        for child in ast.iter_child_nodes(v):
            self.visit(child)

    # -- expression rules ---------------------------------------------
    def check_expr(self, node: ast.AST, result_used: bool = True) -> None:
        if isinstance(node, ast.Call):
            self._check_alloc_call(node)
            self._check_scan_call(node)
            self._check_format_call(node)
            if result_used:
                self._check_invariant_call(node)
        elif isinstance(node, _COMPS):
            self._check_alloc_comp(node)
        elif isinstance(node, ast.Compare):
            self._check_scan_membership(node)
        elif isinstance(node, ast.BinOp):
            self._check_alloc_concat(node)
        elif isinstance(node, ast.JoinedStr):
            self._check_format(node)
        elif isinstance(node, ast.Attribute):
            self._check_deep_chain(node)

    def _check_alloc_call(self, call: ast.Call) -> None:
        if not (self._in_loop() and self._hot("DYN1001", call)):
            return
        name = None
        if isinstance(call.func, ast.Name) and call.args:
            if call.func.id in _ALLOC_BUILTINS:
                name = call.func.id
        elif (isinstance(call.func, ast.Attribute)
              and isinstance(call.func.value, ast.Name)
              and call.func.value.id in _NP_BASES
              and call.func.attr in _NP_CTORS):
            name = f"{call.func.value.id}.{call.func.attr}"
        if name:
            self._emit(
                "DYN1001", call,
                f"{name}(...) allocates per iteration at site heat "
                f"{self._site_heat(call)}",
                anchor=f"alloc:{name}",
                hint="hoist the allocation or reuse a preallocated buffer",
            )

    def _check_alloc_comp(self, comp: ast.AST) -> None:
        if self._in_loop() and self._hot("DYN1001", comp):
            kind = type(comp).__name__.removesuffix("Comp").lower()
            self._emit(
                "DYN1001", comp,
                f"{kind} comprehension rebuilt every iteration at site "
                f"heat {self._site_heat(comp)}",
                anchor=f"alloc:{kind}comp",
                hint="hoist it out of the loop or stream the values",
            )

    def _check_alloc_concat(self, binop: ast.BinOp) -> None:
        if not (isinstance(binop.op, ast.Add) and self._in_loop()
                and self._hot("DYN1001", binop)):
            return
        if any(isinstance(s, (ast.List, ast.Tuple)) or self._is_listy(s)
               for s in (binop.left, binop.right)):
            self._emit(
                "DYN1001", binop,
                "sequence concatenation copies both operands every "
                "iteration",
                anchor="alloc:concat",
                hint="extend in place or chain iterators",
            )

    def _check_scan_membership(self, cmp: ast.Compare) -> None:
        if not self._hot("DYN1002", cmp):
            return
        for op, right in zip(cmp.ops, cmp.comparators):
            if isinstance(op, (ast.In, ast.NotIn)) and self._is_listy(right):
                what = (right.id if isinstance(right, ast.Name)
                        else "a list")
                self._emit(
                    "DYN1002", cmp,
                    f"membership test against {what} is O(n) per event",
                    anchor=f"scan:in:{what}",
                    hint="keep a set/dict alongside the list",
                )

    def _check_scan_call(self, call: ast.Call) -> None:
        if not self._hot("DYN1002", call):
            return
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if attr in ("remove", "index", "count") and self._is_listy(func.value):
            base = (func.value.id if isinstance(func.value, ast.Name)
                    else "list")
            self._emit(
                "DYN1002", call,
                f"{base}.{attr}() scans the whole list per event",
                anchor=f"scan:{attr}:{base}",
                hint="use a set/dict, or index by key",
            )
        elif attr == "pop" and call.args and (
            isinstance(call.args[0], ast.Constant)
            and call.args[0].value == 0
        ):
            self._emit(
                "DYN1002", call,
                "pop(0) shifts every element — O(n) per event",
                anchor="scan:pop0",
                hint="use collections.deque.popleft()",
            )
        elif attr == "insert" and call.args and (
            isinstance(call.args[0], ast.Constant)
            and call.args[0].value == 0
        ):
            self._emit(
                "DYN1002", call,
                "insert(0, ...) shifts every element — O(n) per event",
                anchor="scan:insert0",
                hint="use collections.deque.appendleft()",
            )

    def _check_nested_rank_loop(self, outer) -> None:
        if not self._hot("DYN1003", outer):
            return
        if not _mentions(outer.iter, _RANK_WORDS):
            return
        stack = list(outer.body)
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
                continue
            inner_iters = []
            if isinstance(n, (ast.For, ast.AsyncFor)):
                inner_iters = [n.iter]
            elif isinstance(n, _COMPS + (ast.GeneratorExp,)):
                inner_iters = [g.iter for g in n.generators]
            for it in inner_iters:
                if _mentions(it, _RANK_WORDS) or _mentions(it, _ROW_WORDS):
                    self._emit(
                        "DYN1003", n,
                        "nested iteration over ranks x rows/ranks — "
                        "quadratic in world size on the hot path",
                        anchor="nest:rank",
                        hint="precompute a per-rank index or invert "
                             "the loop",
                    )
                    return
            stack.extend(ast.iter_child_nodes(n))

    def _check_invariant_call(self, call: ast.Call) -> None:
        if not (self.loops and self._hot("DYN1004", call)):
            return
        frame = self.loops[-1]
        text = _call_text(call)
        if text in frame.flagged_calls:
            return
        args = list(call.args) + [kw.value for kw in call.keywords]
        if not args:
            return
        involved = [call.func] + args
        for expr in involved:
            for n in ast.walk(expr):
                if isinstance(n, ast.Name) and n.id in frame.bound:
                    return
                if isinstance(n, ast.Call) and n is not call:
                    return  # nested calls: too opaque to call invariant
        resolvable = (
            self.registry.resolve_call(call, self.fi) is not None
            or self.registry.resolve_method_call(call, self.fi) is not None
        )
        builtin = (isinstance(call.func, ast.Name)
                   and call.func.id in _HOISTABLE_BUILTINS)
        if not (resolvable or builtin):
            return
        frame.flagged_calls.add(text)
        self._emit(
            "DYN1004", call,
            f"{text} is loop-invariant here — same arguments every "
            f"iteration at site heat {self._site_heat(call)}",
            anchor=f"invariant:{text}",
            hint="hoist the call above the loop",
        )

    def _check_deep_chain(self, attr: ast.Attribute) -> None:
        if not (self.loops and self._hot("DYN1004", attr)):
            return
        chain = _attr_chain(attr)
        if chain is None or chain.count(".") < 3:
            return
        frame = self.loops[-1]
        root = chain.split(".", 1)[0]
        if root in frame.bound or chain in frame.flagged_chains:
            return
        # flag the full chain once; its prefixes (visited next, as the
        # Attribute node's children) ride along
        parts = chain.split(".")
        for i in range(2, len(parts) + 1):
            frame.flagged_chains.add(".".join(parts[:i]))
        self._emit(
            "DYN1004", attr,
            f"attribute chain {chain} re-resolved every iteration",
            anchor=f"chain:{chain}",
            hint="bind it to a local before the loop",
        )

    def _check_format(self, node: ast.JoinedStr) -> None:
        if self.in_raise or self.guarded or not self._hot("DYN1005", node):
            return
        if not any(isinstance(v, ast.FormattedValue) for v in node.values):
            return
        self._emit(
            "DYN1005", node,
            "f-string formatted unconditionally on the per-event path",
            anchor="fmt:fstring",
            hint="format lazily (guard on a flag) or move it off the "
                 "hot path",
        )

    def _check_format_call(self, call: ast.Call) -> None:
        if self.in_raise or self.guarded or not self._hot("DYN1005", call):
            return
        kind = _is_format_call(call)
        if kind:
            self._emit(
                "DYN1005", call,
                f"{kind}(...) runs per event — eager formatting on "
                "the hot path",
                anchor=f"fmt:{kind}",
                hint="guard logging/formatting behind a cheap flag "
                     "check",
            )


def _is_format_call(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr == "format" and isinstance(
            func.value, (ast.Constant, ast.JoinedStr)
        ):
            return "str.format"
        if func.attr in _LOG_METHODS:
            chain = _attr_chain(func.value)
            if chain and chain.split(".")[-1] in _LOG_BASES:
                return f"{chain}.{func.attr}"
    return None


def check_function(hf: HotFunc, mod: ModuleInfo,
                   registry: Registry) -> list:
    """All DYN1001–1006 findings for one hot function (suppressions
    already applied)."""
    return _RuleWalker(hf, mod, registry).run()
