"""Interprocedural hot-zone inference for dynperf.

The *hot zone* is the set of functions that run per simulated event or
per runtime cycle — the code whose constant factors the
``BENCH_kernel_events.json`` gate measures.  It is inferred, not
declared: reachability over dynflow's call graph
(:class:`repro.analysis.flow.callgraph.Registry`), rooted at

* the DES kernel event loop — every function in
  ``simcluster/kernel*.py`` (the engine *is* the per-event path);
* message matching — ``SimComm._try_match`` / ``SimComm._deliver``
  (``mpi/comm.py``), the per-receive mailbox scan;
* per-NIC serialization — every function in ``simcluster/network.py``;
* the per-cycle runtime path — ``DynMPI.begin_cycle`` / ``end_cycle``
  / ``compute`` / ``global_reduce`` (``core/runtime.py``), which pulls
  in balance/redistribute/collectives through call edges;
* the collective algorithms (``mpi/collectives.py``);
* any function whose ``def`` line carries a ``# dynperf: hot``
  directive — how future hot paths (and the test fixtures) opt in
  without a registry edit.

Each root enters with **heat 1** ("runs once per event/cycle").  Heat
propagates along call edges with the call site's loop-nesting depth
added (:func:`repro.analysis.flow.cfg.loop_depth_map`): a helper
invoked from a doubly nested loop in a heat-1 function has heat 3 —
it runs O(n^2) times per event.  Cycles converge because heat is
capped at :data:`HEAT_CAP` and only ever increases.  ``self.method``
calls resolve through :meth:`Registry.resolve_method_call`; dynflow
itself never follows those edges, but the per-cycle path is
method-to-method.

``--profile`` re-ranking: a dynscope trace's measured per-phase
exclusive times (:func:`repro.obs.report.phase_shares`) scale each
function's static heat by ``1 + share(phase)`` of the phase its file
belongs to, so measured-hot subsystems sort first in reports and
carry the evidence in each finding's ``detail``.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass

from ..flow.callgraph import FuncInfo, Registry
from ..flow.cfg import loop_depth_map

__all__ = [
    "HEAT_CAP",
    "HOT_DIRECTIVE",
    "HotFunc",
    "HotZone",
    "RootSpec",
    "ROOT_SPECS",
    "infer_hot_zone",
    "load_profile",
]

#: heat saturates here: recursion and pathological chains terminate,
#: and "runs O(n^5) per event" needs no finer grading than "worst"
HEAT_CAP = 6

#: marker on a ``def`` line that declares the function a hot root
HOT_DIRECTIVE = "dynperf: hot"


@dataclass(frozen=True)
class RootSpec:
    """A family of hot roots picked out by path (and optionally
    qualified names — empty means every function in the file)."""

    kind: str
    dir_part: str
    file_prefix: str
    quals: tuple = ()

    def matches(self, fi: FuncInfo) -> bool:
        path = pathlib.Path(fi.path)
        if self.dir_part not in path.parts:
            return False
        if not path.name.startswith(self.file_prefix):
            return False
        return not self.quals or fi.qualname in self.quals


ROOT_SPECS: tuple = (
    RootSpec("kernel", "simcluster", "kernel"),
    RootSpec("nic", "simcluster", "network.py"),
    RootSpec("match", "mpi", "comm.py",
             ("SimComm._try_match", "SimComm._deliver")),
    RootSpec("cycle", "core", "runtime.py",
             ("DynMPI.begin_cycle", "DynMPI.end_cycle",
              "DynMPI.compute", "DynMPI.global_reduce")),
    RootSpec("collective", "mpi", "collectives.py"),
)


def _phase_for(path: str) -> str:
    """The dynscope attribution phase a file's exclusive time lands
    in — the join key between static heat and a measured profile."""
    p = pathlib.Path(path)
    parts = p.parts
    if p.name in ("redistribute.py", "balance.py", "plancheck.py"):
        return "redist"
    if "resilience" in parts:
        return "ckpt"
    if "mpi" in parts or p.name == "network.py":
        return "comm"
    if p.name == "runtime.py" or "dmem" in parts or "apps" in parts:
        return "compute"
    return "other"


@dataclass
class HotFunc:
    info: FuncInfo
    heat: int
    kind: str        # root-spec kind, "directive", or "reached"
    via: str = ""    # the caller that heated a reached function
    phase: str = "other"

    def effective_heat(self, shares: dict) -> float:
        """Static heat re-ranked by a measured profile: scaled by
        ``1 + share`` of this function's attribution phase."""
        return self.heat * (1.0 + shares.get(self.phase, 0.0))


class HotZone:
    """The inferred hot functions, keyed by (module, qualname)."""

    def __init__(self):
        self.functions: dict[tuple, HotFunc] = {}

    def get(self, fi: FuncInfo):
        return self.functions.get((fi.module, fi.qualname))

    def __len__(self) -> int:
        return len(self.functions)

    def __contains__(self, fi: FuncInfo) -> bool:
        return (fi.module, fi.qualname) in self.functions

    def ranked(self, shares: dict | None = None) -> list:
        """Hot functions ordered hottest-first; with profile
        ``shares`` the measured re-ranking applies, otherwise pure
        static heat.  Deterministic: ties break on (path, qualname)."""
        shares = shares or {}
        return sorted(
            self.functions.values(),
            key=lambda hf: (-hf.effective_heat(shares),
                            hf.info.path, hf.info.qualname),
        )


def _own_calls(node: ast.AST):
    """Call expressions in ``node``'s own body, nested function
    scopes excluded (they are separate registry entries)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda)):
            continue
        if isinstance(n, ast.Call):
            yield n
        stack.extend(ast.iter_child_nodes(n))


def _root_kind(fi: FuncInfo, def_line: str) -> str:
    if HOT_DIRECTIVE in def_line:
        return "directive"
    for spec in ROOT_SPECS:
        if spec.matches(fi):
            return spec.kind
    return ""


def infer_hot_zone(registry: Registry) -> HotZone:
    """Roots + heat-propagating reachability closure (BFS, highest
    heat wins, deterministic order)."""
    zone = HotZone()
    worklist: list[tuple] = []
    for mod in sorted(registry.modules.values(), key=lambda m: m.path):
        for qual in sorted(mod.functions):
            fi = mod.functions[qual]
            kind = _root_kind(fi, mod.line(fi.node.lineno))
            if kind:
                zone.functions[(fi.module, fi.qualname)] = HotFunc(
                    fi, heat=1, kind=kind, phase=_phase_for(fi.path)
                )
                worklist.append((fi.module, fi.qualname))

    while worklist:
        key = worklist.pop(0)
        hf = zone.functions[key]
        depths = loop_depth_map(hf.info.node)
        for call in sorted(_own_calls(hf.info.node),
                           key=lambda c: (c.lineno, c.col_offset)):
            callee = (registry.resolve_call(call, hf.info)
                      or registry.resolve_method_call(call, hf.info))
            if callee is None:
                continue
            heat = min(HEAT_CAP, hf.heat + depths.get(id(call), 0))
            ckey = (callee.module, callee.qualname)
            cur = zone.functions.get(ckey)
            if cur is not None and cur.heat >= heat:
                continue
            zone.functions[ckey] = HotFunc(
                callee, heat,
                kind=cur.kind if cur is not None else "reached",
                via=hf.info.qualname if cur is None or cur.kind == "reached"
                else cur.via,
                phase=_phase_for(callee.path),
            )
            worklist.append(ckey)
    return zone


def load_profile(trace_path: str) -> dict:
    """Measured per-phase shares from a dynscope trace export (either
    format) — the ``--profile`` join.  Raises OSError/ValueError for
    unreadable or malformed traces (the driver maps those to exit 2)."""
    from ...obs.export import load_trace
    from ...obs.report import attribute, phase_shares

    _meta, events = load_trace(trace_path)
    return phase_shares(attribute(events))
