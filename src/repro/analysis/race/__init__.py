"""dynrace — static message-race and determinism analysis with a
schedule-perturbation cross-check.

The fourth static layer of the analysis suite (after the plan
verifier, the AST lint, and dynflow).  The repo's headline guarantee —
two identical seeded runs export byte-identical traces — holds only in
the *absence* of message races and hidden nondeterminism; the runtime
sanitizer merely observes ANY_SOURCE races when they happen to occur.
dynrace proves their absence statically and backs the verdict with a
dynamic experiment:

* **DYN701/DYN702** come from a happens-before model (:mod:`.hb`) over
  dynflow's communication trace summaries: collectives induce ordering
  edges (epochs), rank-pinned branches bound who executes a site, and
  a wildcard receive reachable by ≥2 concurrent sources — or a branch
  whose condition derives from a wildcard-receive result and whose
  arms emit different traffic — is flagged with the racing sites side
  by side.
* **DYN703/DYN704/DYN705** are AST determinism rules
  (:func:`repro.analysis.lint.race_lint_paths`): unordered-set
  iteration feeding message/event order, RNG use outside the seeded
  ``StreamRegistry`` home, and set-order-dependent float accumulation.
* **The perturbation harness** (:mod:`.perturb`,
  ``DYNMPI_PERTURB=<seed>``) re-runs a traced scenario with the
  kernel's MPI-undefined tie-breaks flipped and byte-compares the
  exports: clean programs must be invariant under every seed, and
  every DYN701 true positive is demonstrable as a real trace diff.

Usage::

    python -m repro.analysis race src/repro examples
    python -m repro.analysis race --json --baseline race.json src
    python -m repro.analysis perturb --seeds 1,2,3

Suppress a finding with ``# dynrace: ok`` on its line (justify it in a
comment), or carry a baseline file (``--write-baseline`` /
``--baseline``).
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Optional

from ..flow.callgraph import load_registry
from ..flow.report import (
    FlowFinding,
    findings_to_json,
    load_baseline,
    render_findings,
    save_baseline,
)
from ..lint import race_lint_paths
from .engine import SUPPRESS_MARK, RaceEngine
from .hb import RaceEvent, collect_events, may_match, race_skeleton
from .perturb import PerturbReport, capture_trace, run_perturbed

__all__ = [
    "RACE_CODES",
    "SUPPRESS_MARK",
    "PerturbReport",
    "RaceEngine",
    "RaceEvent",
    "analyze_race_paths",
    "capture_trace",
    "collect_events",
    "may_match",
    "race_skeleton",
    "run_perturbed",
    "run_race",
]

#: one-line summaries of the dynrace finding codes (the full table
#: lives in ``repro.analysis.flow.report.CODES``, shared by --json)
RACE_CODES = {
    "DYN701": "wildcard receive matchable by concurrent sends from "
              "several sources",
    "DYN702": "schedule-dependent branch changes subsequent communication",
    "DYN703": "unordered set iteration feeds message/event ordering",
    "DYN704": "RNG outside the seeded StreamRegistry home",
    "DYN705": "float accumulation order depends on set iteration",
}


def analyze_race_paths(paths: Iterable) -> list:
    """Run the dynrace analyses over ``paths``: the happens-before
    engine (DYN701/702) plus the determinism AST rules (DYN703–705),
    all returned as :class:`FlowFinding` so rendering, JSON, and
    baselines are uniform.  Line-level ``# dynrace: ok`` suppressions
    are already applied; baseline filtering is the caller's."""
    registry = load_registry(paths)
    findings = RaceEngine(registry).run()
    for lf in race_lint_paths(paths):
        findings.append(FlowFinding(
            path=lf.path, line=lf.line, col=lf.col, code=lf.code,
            function="", message=lf.message, anchor=lf.message,
        ))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def run_race(
    paths: Iterable,
    *,
    json_out: bool = False,
    quiet: bool = False,
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
    max_seconds: Optional[float] = None,
    stream=None,
) -> int:
    """CLI driver.  Exit codes: 0 clean, 1 findings, 2 usage or
    internal error (including a blown ``--max-seconds`` budget)."""
    out = stream if stream is not None else sys.stdout
    t0 = time.monotonic()
    try:
        findings = analyze_race_paths(paths)
    except Exception as exc:  # internal error, not a finding
        print(f"dynrace: internal error: {exc!r}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - t0

    if write_baseline:
        save_baseline(write_baseline, findings, tool="dynrace")

    suppressed = 0
    if baseline:
        known = load_baseline(baseline)
        kept = [f for f in findings if f.fingerprint not in known]
        suppressed = len(findings) - len(kept)
        findings = kept

    if json_out:
        import json as _json

        payload = findings_to_json(
            findings, suppressed=suppressed, elapsed=elapsed
        )
        payload["tool"] = "dynrace"
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
    elif findings:
        print(render_findings(findings), file=out)
        if not quiet:
            print(
                f"dynrace: {len(findings)} finding(s)"
                + (f", {suppressed} baselined" if suppressed else ""),
                file=out,
            )
    elif not quiet:
        print(
            "dynrace: clean"
            + (f" ({suppressed} baselined)" if suppressed else "")
            + f" [{elapsed:.2f}s]",
            file=out,
        )

    if max_seconds is not None and elapsed > max_seconds:
        print(
            f"dynrace: analysis took {elapsed:.1f}s, over the "
            f"--max-seconds {max_seconds:g} budget",
            file=sys.stderr,
        )
        return 2
    return 1 if findings else 0
