"""The schedule-perturbation harness — dynrace's dynamic cross-check.

The static checker's claim is falsifiable: a schedule-clean program
exports a byte-identical trace under *every* perturbation seed, and a
DYN701 true positive shows up as a real byte-level diff.  This module
runs a traced target once unperturbed and once per seed
(``DYNMPI_PERTURB=<seed>`` flips the kernel's wildcard-match
tie-breaks, see :class:`repro.simcluster.kernel.Perturb`), then
compares the JSONL trace exports byte for byte.

Targets:

* ``"removal"`` — the canonical seeded removal scenario
  (:func:`repro.obs.scenario.run_removal`), the PR-5 byte-determinism
  reference run;
* a path to a Python file exposing ``run_traced() -> str`` returning a
  trace export (the seeded-bad fixtures under ``tests/fixtures/race``
  use this to demonstrate their races dynamically).
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

__all__ = ["PerturbReport", "SeedRun", "capture_trace", "run_perturbed"]


@dataclass(frozen=True)
class SeedRun:
    seed: int
    identical: bool
    #: human-readable description of the first differing line, "" when
    #: the traces are byte-identical
    first_diff: str = ""


@dataclass(frozen=True)
class PerturbReport:
    target: str
    runs: tuple
    trace_lines: int

    @property
    def invariant(self) -> bool:
        """True when every seed reproduced the unperturbed trace."""
        return all(r.identical for r in self.runs)

    def to_json(self) -> dict:
        return {
            "tool": "dynrace-perturb",
            "target": self.target,
            "trace_lines": self.trace_lines,
            "invariant": self.invariant,
            "runs": [
                {
                    "seed": r.seed,
                    "identical": r.identical,
                    "first_diff": r.first_diff,
                }
                for r in self.runs
            ],
        }

    def render(self) -> str:
        out = [
            f"perturb: target={self.target} "
            f"({self.trace_lines} trace lines)"
        ]
        for r in self.runs:
            verdict = "identical" if r.identical else f"DIFFERS ({r.first_diff})"
            out.append(f"  seed {r.seed}: {verdict}")
        out.append(
            "perturb: trace is schedule-invariant" if self.invariant
            else "perturb: trace depends on the message schedule"
        )
        return "\n".join(out)


@contextlib.contextmanager
def _perturb_env(seed: Optional[int]) -> Iterator[None]:
    prev = os.environ.get("DYNMPI_PERTURB")
    try:
        if seed is None:
            os.environ.pop("DYNMPI_PERTURB", None)
        else:
            os.environ["DYNMPI_PERTURB"] = str(seed)
        yield
    finally:
        if prev is None:
            os.environ.pop("DYNMPI_PERTURB", None)
        else:
            os.environ["DYNMPI_PERTURB"] = prev


def capture_trace(target: str = "removal") -> str:
    """Run ``target`` once with tracing on; returns the JSONL export."""
    if target == "removal":
        from ...obs.export import jsonl_text
        from ...obs.scenario import run_removal
        _result, cluster = run_removal(observe=True)
        return jsonl_text(cluster.obs)
    return _load_target(target).run_traced()


def _load_target(path: str):
    import importlib.util

    spec = importlib.util.spec_from_file_location("_dynrace_target", path)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot load perturbation target {path!r}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    if not callable(getattr(mod, "run_traced", None)):
        raise ValueError(
            f"perturbation target {path!r} must define run_traced() -> str"
        )
    return mod


def _first_diff(base: str, other: str) -> str:
    a, b = base.splitlines(), other.splitlines()
    for i, (la, lb) in enumerate(zip(a, b), start=1):
        if la != lb:
            return f"line {i}: {_shorten(la)} != {_shorten(lb)}"
    return f"line count {len(a)} != {len(b)}"


def _shorten(line: str, limit: int = 96) -> str:
    return line if len(line) <= limit else line[: limit - 3] + "..."


def run_perturbed(target: str = "removal",
                  seeds: Sequence[int] = (1, 2, 3)) -> PerturbReport:
    """Capture the unperturbed trace, re-run under each seed, and diff.

    Each individual run — perturbed or not — is deterministic; the
    report says whether the *schedule* leaks into the trace bytes."""
    with _perturb_env(None):
        base = capture_trace(target)
    runs = []
    for seed in seeds:
        with _perturb_env(int(seed)):
            trace = capture_trace(target)
        identical = trace == base
        runs.append(SeedRun(
            int(seed), identical,
            "" if identical else _first_diff(base, trace),
        ))
    return PerturbReport(target, tuple(runs), len(base.splitlines()))
