"""dynrace's happens-before model over communication trace summaries.

dynflow's abstract interpretation already turns each program root into
a *trace* — a tree of :class:`~repro.analysis.flow.domain.CommEvent`,
``LoopNode`` and ``ChoiceNode``.  This module flattens such trees into
:class:`RaceEvent` records carrying the happens-before facts the race
checker needs:

**Epochs.**  Every world/active collective (and the ``begin_cycle`` /
``end_cycle`` pair) is a synchronization point all participating ranks
pass together, so it induces ordering edges: a blocking receive in
epoch *e* completes before its rank enters the epoch-closing
collective, and a send posted after that collective therefore
happens-after the receive — it can never supply it.  The sound
matching rule is one-sided: a send may match a receive **unless** the
send's epoch is strictly greater (an *earlier* send may still be in
flight across any number of collectives — collectives do not flush
point-to-point traffic).

**Pins.**  A branch on ``ep.rank == 0`` restricts its true arm to one
executing rank.  Events keep the innermost pin so the checker can
count *distinct concurrent sources*: two send sites pinned to the same
rank are one source (per-pair non-overtaking orders them); an unpinned
SPMD site is executed by many ranks at once and counts as at least
two.

**Loops.**  Iterations blur epoch boundaries (iteration *i*'s send can
race iteration *i+1*'s receive), so events inside a loop match
conservatively regardless of epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..flow.domain import ChoiceNode, CommEvent, LoopNode

__all__ = ["RaceEvent", "collect_events", "may_match", "race_skeleton"]


@dataclass(frozen=True)
class RaceEvent:
    """One point-to-point event with its happens-before context."""

    event: CommEvent
    epoch: int
    #: executing-rank constant when inside a rank-pinned arm, else None
    #: (the site runs on many ranks concurrently)
    pin: Optional[int]
    in_loop: bool
    #: qualname of the program root whose trace emitted the event
    root: str

    def describe(self) -> str:
        who = f"rank {self.pin}" if self.pin is not None else "many ranks"
        loop = ", looped" if self.in_loop else ""
        return (
            f"{self.event.render()} in {self.root} "
            f"[{who}{loop}, epoch {self.epoch}]"
        )


def collect_events(trace, root: str, *, out: Optional[list] = None,
                   epoch: int = 0, pin: Optional[int] = None,
                   in_loop: bool = False) -> int:
    """Flatten ``trace`` into ``out``; returns the epoch counter after
    the trace (collectives increment it, forming the ordering edges)."""
    if out is None:
        out = []
    for node in trace:
        if isinstance(node, CommEvent):
            if node.kind in ("coll", "cycle") and node.scope in (
                "world", "active"
            ):
                epoch += 1
            elif node.scope == "p2p":
                out.append(RaceEvent(node, epoch, pin, in_loop, root))
        elif isinstance(node, LoopNode):
            epoch = collect_events(
                node.body, root, out=out, epoch=epoch, pin=pin, in_loop=True
            )
        elif isinstance(node, ChoiceNode):
            arm_epochs = [epoch]
            for i, arm in enumerate(node.arms):
                arm_pin = pin
                if i == 0 and node.pin is not None:
                    arm_pin = node.pin
                arm_epochs.append(collect_events(
                    arm, root, out=out, epoch=epoch, pin=arm_pin,
                    in_loop=in_loop,
                ))
            epoch = max(arm_epochs)
    return epoch


def _as_int(text: str) -> Optional[int]:
    try:
        return int(text)
    except ValueError:
        return None


def may_match(send: RaceEvent, recv: RaceEvent) -> bool:
    """Could ``send`` supply ``recv``?  Happens-before rules out only
    sends posted strictly after the receive's epoch (outside loops);
    tag and destination constraints rule out provably different
    constants — everything else stays conservatively matchable."""
    if send.event.kind != "send":
        return False
    # ordering: a send after the receive's closing collective
    # happens-after the (blocking) receive completed
    if (
        send.epoch > recv.epoch
        and not send.in_loop
        and not recv.in_loop
    ):
        return False
    # tag: a concrete mismatch cannot match (wildcard tag matches all)
    if recv.event.tag != "*":
        s_tag, r_tag = _as_int(send.event.tag), _as_int(recv.event.tag)
        if s_tag is not None and r_tag is not None and s_tag != r_tag:
            return False
    # destination: a send to a constant rank only reaches a receive
    # pinned to a different constant if the pin lies
    dest = _as_int(send.event.peer)
    if dest is not None and recv.pin is not None and dest != recv.pin:
        return False
    # source constraint of an exact-source receive (ANY_TAG wildcard):
    # a sender pinned to a different constant rank cannot supply it
    if recv.event.peer != "*":
        src = _as_int(recv.event.peer)
        if src is not None and send.pin is not None and send.pin != src:
            return False
    return True


def race_skeleton(trace) -> tuple:
    """Full-traffic projection for DYN702 arm comparison: unlike
    :func:`~repro.analysis.flow.domain.skeleton` it keeps p2p events
    (with peer/tag), because schedule-dependent *point-to-point*
    divergence is exactly what DYN702 is after."""
    out: list = []
    for node in trace:
        if isinstance(node, CommEvent):
            entry = node.sig
            if node.scope == "p2p":
                entry = entry + (node.peer, node.tag)
            out.append(entry)
        elif isinstance(node, LoopNode):
            body = race_skeleton(node.body)
            if body:
                out.append(("loop", node.tainted, body))
        elif isinstance(node, ChoiceNode):
            arms = [race_skeleton(a) for a in node.arms]
            first = arms[0] if arms else ()
            if all(a == first for a in arms):
                out.extend(first)
            else:
                out.append(("choice", tuple(arms)))
    return tuple(out)
