"""The dynrace static checker: DYN701 (wildcard-receive race) and
DYN702 (schedule-dependent control flow).

The engine reuses dynflow's interprocedural trace builder
(:class:`~repro.analysis.flow.collectives.CollectiveAnalyzer`) purely
as a summarizer — its own DYN5xx findings are the ``flow`` command's
business and are discarded here — then applies the happens-before
model of :mod:`.hb` to the per-root traces.

Concurrency pools are per *module*: sibling program roots in one file
(a master program and its worker program) run in the same job, so
their events race each other; their epoch counters align because both
sides pass the same world-scope collectives.
"""

from __future__ import annotations

from ..flow.callgraph import Registry
from ..flow.collectives import CollectiveAnalyzer
from ..flow.domain import ChoiceNode, LoopNode, render_trace
from ..flow.report import FlowFinding, SideBySide
from .hb import RaceEvent, collect_events, may_match, race_skeleton

__all__ = ["RaceEngine", "SUPPRESS_MARK"]

SUPPRESS_MARK = "dynrace: ok"


class RaceEngine:
    def __init__(self, registry: Registry):
        self.reg = registry
        self.trace_builder = CollectiveAnalyzer(registry)
        self.findings: list[FlowFinding] = []
        self._emitted: set = set()
        self._by_path = {m.path: m for m in registry.modules.values()}

    # -- findings plumbing ---------------------------------------------
    def _suppressed(self, path: str, line: int) -> bool:
        mod = self._by_path.get(path)
        return mod is not None and SUPPRESS_MARK in mod.line(line)

    def _emit(self, finding: FlowFinding) -> None:
        key = (finding.code, finding.path, finding.line, finding.anchor)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if not self._suppressed(finding.path, finding.line):
            self.findings.append(finding)

    # -- driver ---------------------------------------------------------
    def run(self) -> list:
        pools: dict = {}
        for root in self.reg.roots():
            pools.setdefault(root.module, []).append(root)
        for _module, roots in sorted(pools.items()):
            events: list[RaceEvent] = []
            traces = []
            for fi in sorted(roots, key=lambda f: f.qualname):
                summary = self.trace_builder.summarize(fi, frozenset())
                traces.append(summary.trace)
                collect_events(summary.trace, fi.qualname, out=events)
            self._check_wildcard_races(events)
            for trace in traces:
                self._check_sched_branches(trace)
        self.findings.sort(key=lambda f: (f.path, f.line, f.code))
        return self.findings

    # -- DYN701 ---------------------------------------------------------
    def _check_wildcard_races(self, events: list) -> None:
        sends = [e for e in events if e.event.kind == "send"]
        for recv in events:
            if not (recv.event.kind == "recv" and recv.event.peer == "*"):
                continue
            candidates = [s for s in sends if may_match(s, recv)]
            sources = {s.pin for s in candidates if s.pin is not None}
            many = any(s.pin is None for s in candidates)
            n_sources = len(sources) + (2 if many else 0)
            if n_sources < 2:
                continue
            self._emit_701(recv, candidates, n_sources)

    def _emit_701(self, recv: RaceEvent, candidates: list,
                  n_sources: int) -> None:
        ordered = sorted(
            candidates,
            key=lambda s: (s.pin is not None, s.event.path, s.event.line),
        )
        left = ordered[0]
        right = ordered[1] if len(ordered) > 1 else ordered[0]
        right_lines = (
            (right.describe(),) if right is not left
            else ("(the same site, executed concurrently by the other "
                  "ranks)",)
        )
        ev = recv.event
        anchor = "|".join(
            [ev.name, ev.peer, ev.tag]
            + sorted({f"{s.event.name}->{s.event.peer}" for s in candidates})
        )
        self._emit(FlowFinding(
            path=ev.path,
            line=ev.line,
            col=0,
            code="DYN701",
            function=ev.func,
            message=(
                f"wildcard receive `{ev.name}` (source=*, tag={ev.tag}) "
                f"can be supplied by {n_sources}+ concurrent sources — "
                f"which message wins is decided by the schedule, not the "
                f"program"
            ),
            anchor=anchor,
            side_by_side=SideBySide(
                left_label="racing send",
                right_label="racing send",
                left=(left.describe(),),
                right=right_lines,
            ),
            hint=(
                "receive from explicit sources (one recv per expected "
                "peer), or make the consumer order-insensitive (key the "
                "accumulation by status.source) and demonstrate trace "
                "invariance under DYNMPI_PERTURB"
            ),
        ))

    # -- DYN702 ---------------------------------------------------------
    def _check_sched_branches(self, trace) -> None:
        for node in trace:
            if isinstance(node, LoopNode):
                self._check_sched_branches(node.body)
            elif isinstance(node, ChoiceNode):
                if node.sched:
                    skels = [race_skeleton(a) for a in node.arms]
                    if any(s != skels[0] for s in skels):
                        self._emit_702(node)
                for arm in node.arms:
                    self._check_sched_branches(arm)

    def _emit_702(self, node: ChoiceNode) -> None:
        arms = [tuple(render_trace(a)) for a in node.arms]
        skels = tuple(race_skeleton(a) for a in node.arms)
        self._emit(FlowFinding(
            path=node.path,
            line=node.line,
            col=0,
            code="DYN702",
            function=node.func,
            message=(
                f"branch on `{node.cond}` derives from a wildcard-receive "
                f"result and its arms emit different communication — the "
                f"message schedule, not the program, picks the traffic "
                f"pattern"
            ),
            anchor=f"{node.cond}|{skels!r}",
            side_by_side=SideBySide(
                left_label=f"ranks where `{node.cond}`",
                right_label=f"ranks where not `{node.cond}`",
                left=arms[0] if arms else (),
                right=arms[1] if len(arms) > 1 else (),
            ),
            hint=(
                "decide control flow from program data (an explicit "
                "source/tag protocol) or make every arm emit the same "
                "communication; schedule-dependent traffic breaks "
                "byte-identical trace replay"
            ),
        ))
