"""dynflow's abstract domain: communication trace summaries.

The abstract value of a statement sequence is the *communication
trace* it may emit — a tree of:

* :class:`CommEvent` — one send/recv/collective signature
  (operation, scope, root, source line);
* :class:`LoopNode` — a repeated sub-trace plus whether its trip
  count is rank-dependent;
* :class:`ChoiceNode` — the arms of a branch plus whether its
  condition is rank-dependent.

Collective matching compares the *matchable skeletons* of two traces:
the projection onto collective/cycle events (point-to-point traffic is
pairwise by construction and legitimately rank-dependent, so it is
excluded from matching but kept for the side-by-side diagnostics).

Scopes
------

``world``
    Every rank — active, logically dropped, or physically removed —
    must reach the call: ``global_reduce`` (whose removed-rank branch
    *receives* the paper's 4.4 send-out) and the ``begin_cycle`` /
    ``end_cycle`` pair.
``active``
    Exactly the participating ranks enter: ``allreduce_active``,
    ``allgather_active``, ``bcast_active``.  Guarding these with
    ``ctx.participating()`` is the correct pattern; reaching one on a
    removed path is DYN503 (send-in from a removed rank).
``p2p``
    Endpoint traffic: matched pairwise, exempt from sequence matching;
    a *send* on a removed path is still DYN503.

Rank taint
----------

A value is rank-tainted when it derives from per-rank state: the
relative/world rank, the owned bounds, participation, neighbor ranks,
or a point-to-point receive.  Collective *results* are rank-uniform by
definition (every rank gets the same value), so they launder taint —
which is exactly the property that makes data-dependent-but-uniform
control flow (e.g. a residual-based convergence break) legal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "CommEvent", "LoopNode", "ChoiceNode", "Trace", "TraceNode",
    "classify_call", "RANK_SOURCES", "UNIFORM_RESULTS",
    "skeleton", "render_trace", "expr_text",
]

#: ctx/comm attributes and methods whose value is rank-dependent
RANK_SOURCES = frozenset({
    "rel_rank", "my_bounds", "participating", "nn_neighbors",
    "start_iter", "end_iter", "world_rank", "rank", "Get_rank",
    "relative_rank", "active", "dead_world", "held_rows", "bounds",
    "node_id", "proc",
    # p2p receives deliver per-rank payloads
    "recv_rel", "sendrecv_rel", "recv", "irecv", "sendrecv",
})

#: attribute/name spellings that denote the *executing* rank — the
#: only expressions a ``== const`` comparison may pin an arm with
#: (``status.source == 1`` compares a received rank, not the executor)
_RANK_NAMES = frozenset({
    "rank", "rel", "rel_rank", "world_rank", "relative_rank", "me",
    "my_rank",
})

#: calls whose *result* is identical on every rank (allgather & co.)
#: — they consume rank-dependent inputs and return uniform outputs
UNIFORM_RESULTS = frozenset({
    "allreduce_active", "allgather_active", "bcast_active",
    "global_reduce", "allreduce", "allgather", "bcast",
    "allgather_dissemination", "num_active",
})

#: method name -> (kind, scope)
_COMM_METHODS = {
    "begin_cycle": ("cycle", "world"),
    "end_cycle": ("cycle", "world"),
    "global_reduce": ("coll", "world"),
    "allreduce_active": ("coll", "active"),
    "allgather_active": ("coll", "active"),
    "bcast_active": ("coll", "active"),
    "send_rel": ("send", "p2p"),
    "recv_rel": ("recv", "p2p"),
    "sendrecv_rel": ("sendrecv", "p2p"),
}

#: endpoint-level methods; only counted when the receiver looks like
#: an endpoint (``ctx.ep``, ``self.ep``, a bare ``ep``) so unrelated
#: ``.send``/``.recv`` methods in analyzed code stay invisible
_EP_METHODS = {
    "send": ("send", "p2p"),
    "recv": ("recv", "p2p"),
    "isend": ("send", "p2p"),
    "irecv": ("recv", "p2p"),
    "sendrecv": ("sendrecv", "p2p"),
}


@dataclass(frozen=True)
class CommEvent:
    kind: str    # "coll" | "cycle" | "send" | "recv" | "sendrecv"
    scope: str   # "world" | "active" | "p2p"
    name: str    # API name: allgather_active, global_reduce, isend...
    root: str = ""   # rendered root/op argument when present
    line: int = 0
    #: p2p endpoint: rendered dest (sends) / source (recvs) expression,
    #: ``"*"`` for ANY_SOURCE, ``""`` when unmodeled (dynrace input)
    peer: str = ""
    #: p2p tag expression, ``"*"`` for ANY_TAG
    tag: str = ""
    #: defining location, stamped by the trace walker so findings on
    #: spliced callee events can point into the callee's file
    path: str = ""
    func: str = ""

    @property
    def sig(self) -> tuple:
        """Matching identity — everything but the source position."""
        return (self.kind, self.scope, self.name, self.root)

    @property
    def wildcard(self) -> bool:
        """A receive whose *source* MPI matches by wildcard (dynrace
        DYN701).  A tag-only wildcard with an exact source is not a
        race point: per-pair non-overtaking still defines the winner
        (the earliest message from that source)."""
        return self.kind in ("recv", "sendrecv") and self.peer == "*"

    def render(self) -> str:
        root = f" root={self.root}" if self.root else ""
        peer = ""
        if self.scope == "p2p" and self.peer:
            arrow = "->" if self.kind == "send" else "<-"
            peer = f" {arrow}{self.peer}"
            if self.tag:
                peer += f" tag={self.tag}"
        return f"{self.name}{root}{peer} [{self.scope}] L{self.line}"


@dataclass(frozen=True)
class LoopNode:
    body: tuple            # Trace
    bound: str             # rendered bound/iterable expression
    tainted: bool
    line: int = 0


@dataclass(frozen=True)
class ChoiceNode:
    arms: tuple            # tuple of Traces
    cond: str              # rendered condition
    tainted: bool
    participation: bool = False  # condition is ctx.participating()
    line: int = 0
    #: the integer rank constant when the condition pins the true arm
    #: to one rank (``ep.rank == 0``); None otherwise.  dynrace uses
    #: this to count how many ranks can execute a send site.
    pin: Optional[int] = None
    #: condition derives from a wildcard-receive result — the arms are
    #: chosen by the message schedule (dynrace DYN702 when they differ)
    sched: bool = False
    path: str = ""
    func: str = ""


TraceNode = Union[CommEvent, LoopNode, ChoiceNode]
Trace = tuple


def _dotted(node) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def expr_text(node) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _looks_like_endpoint(recv: Optional[ast.expr]) -> bool:
    dotted = _dotted(recv) if recv is not None else None
    if dotted is None:
        return False
    last = dotted.split(".")[-1]
    return last in ("ep", "endpoint") or dotted in ("self.ep", "ctx.ep")


def _wild_text(node: Optional[ast.expr], wild_name: str) -> str:
    """Render a source/tag argument; the ANY_* sentinels (name,
    attribute, or their literal value -1) become ``"*"``."""
    if node is None:
        return "*"
    text = expr_text(node)
    if text.split(".")[-1] == wild_name:
        return "*"
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and node.operand.value == 1
    ):
        return "*"
    return text


def _arg(call: ast.Call, idx: int, kw_name: str) -> Optional[ast.expr]:
    if len(call.args) > idx:
        return call.args[idx]
    for kw in call.keywords:
        if kw.arg == kw_name:
            return kw.value
    return None


def _peer_tag(name: str, call: ast.Call) -> tuple:
    """Extract the (peer, tag) texts of a p2p call from its known
    signature; receives default to wildcards, sends to tag 0.
    ``sendrecv``'s two sides do not fit one (peer, tag) slot — it is
    left unmodeled (empty) and dynrace treats it conservatively."""
    if name in ("send", "isend", "send_rel"):
        dest = _arg(call, 0, "peer" if name == "send_rel" else "dest")
        tag = _arg(call, 1, "tag")
        return (
            expr_text(dest) if dest is not None else "",
            expr_text(tag) if tag is not None else "0",
        )
    if name in ("recv", "irecv"):
        return (
            _wild_text(_arg(call, 0, "source"), "ANY_SOURCE"),
            _wild_text(_arg(call, 1, "tag"), "ANY_TAG"),
        )
    if name == "recv_rel":
        peer = _arg(call, 0, "peer")
        tag = _arg(call, 1, "tag")
        return (
            _wild_text(peer, "ANY_SOURCE") if peer is not None else "",
            _wild_text(tag, "ANY_TAG") if tag is not None else "0",
        )
    return ("", "")


def classify_call(call: ast.Call) -> Optional[CommEvent]:
    """Map a call expression to a communication event, or None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    entry = _COMM_METHODS.get(name)
    if entry is None:
        ep_entry = _EP_METHODS.get(name)
        if ep_entry is not None and _looks_like_endpoint(func.value):
            entry = ep_entry
    if entry is None:
        return None
    kind, scope = entry
    root = ""
    if name == "bcast_active":
        for kw in call.keywords:
            if kw.arg == "root":
                root = expr_text(kw.value)
        if len(call.args) >= 2:
            root = expr_text(call.args[1])
    elif name == "global_reduce" and len(call.args) >= 2:
        root = f"op={expr_text(call.args[1])}"
    peer, tag = _peer_tag(name, call) if scope == "p2p" else ("", "")
    return CommEvent(
        kind, scope, name, root, getattr(call, "lineno", 0),
        peer=peer, tag=tag,
    )


# ---------------------------------------------------------------------
# skeletons and rendering
# ---------------------------------------------------------------------

def skeleton(trace: Trace, scopes=("world", "active")) -> tuple:
    """Project a trace onto matchable collective structure.

    Returns a tuple of entries: ``CommEvent.sig`` tuples for events in
    ``scopes``, ``("loop", bound_tainted, body_skel)`` for loops with
    a non-empty body skeleton, and ``("choice", arm_skels)`` for
    branches whose arms differ.  Equal skeletons == provably identical
    collective sequences under the abstraction.
    """
    out: list = []
    for node in trace:
        if isinstance(node, CommEvent):
            if node.scope in scopes and node.kind in ("coll", "cycle"):
                out.append(node.sig)
        elif isinstance(node, LoopNode):
            body = skeleton(node.body, scopes)
            if body:
                out.append(("loop", node.tainted, body))
        elif isinstance(node, ChoiceNode):
            arms = [skeleton(a, scopes) for a in node.arms]
            first = arms[0] if arms else ()
            if all(a == first for a in arms):
                out.extend(first)
            else:
                out.append(("choice", tuple(arms)))
    return tuple(out)


def has_comm(trace: Trace, scopes=("world", "active")) -> bool:
    return bool(skeleton(trace, scopes))


def events_in(trace: Trace, *, kinds=None, scopes=None) -> list:
    """Flatten a trace to its events (loop bodies and all arms
    included), optionally filtered."""
    out: list = []
    for node in trace:
        if isinstance(node, CommEvent):
            if (kinds is None or node.kind in kinds) and (
                scopes is None or node.scope in scopes
            ):
                out.append(node)
        elif isinstance(node, LoopNode):
            out.extend(events_in(node.body, kinds=kinds, scopes=scopes))
        elif isinstance(node, ChoiceNode):
            for arm in node.arms:
                out.extend(events_in(arm, kinds=kinds, scopes=scopes))
    return out


def render_trace(trace: Trace, depth: int = 0) -> list:
    """One line per node, loops/branches indented — the side-by-side
    diagnostic body."""
    pad = "  " * depth
    out: list = []
    for node in trace:
        if isinstance(node, CommEvent):
            out.append(pad + node.render())
        elif isinstance(node, LoopNode):
            mark = "rank-dependent " if node.tainted else ""
            out.append(f"{pad}loop over {mark}`{node.bound}` L{node.line}:")
            body = render_trace(node.body, depth + 1)
            out.extend(body if body else [pad + "  (no communication)"])
        elif isinstance(node, ChoiceNode):
            arms = [render_trace(a, depth + 1) for a in node.arms]
            if all(a == arms[0] for a in arms):
                out.extend(
                    render_trace(node.arms[0], depth) if node.arms else []
                )
                continue
            mark = "rank-dependent " if node.tainted else ""
            out.append(f"{pad}if {mark}`{node.cond}` L{node.line}:")
            for i, arm in enumerate(arms):
                out.append(f"{pad}  arm {i}:")
                out.extend(
                    [s for s in arm] if arm else [pad + "    (no communication)"]
                )
    return out


# ---------------------------------------------------------------------
# taint environment
# ---------------------------------------------------------------------

@dataclass
class TaintEnv:
    """May-taint variable environment plus participation facts."""

    tainted: set = field(default_factory=set)
    #: vars known to hold the boolean result of ctx.participating()
    part_vars: set = field(default_factory=set)
    #: id(ast.Call) -> bool for calls resolved interprocedurally whose
    #: *return value* is rank-tainted (filled by the call-graph layer;
    #: shared by reference across copies)
    call_returns: dict = field(default_factory=dict)
    #: vars derived from a *wildcard* receive's result — values the
    #: message schedule, not the program, decides (dynrace DYN702).
    #: Collective results do NOT launder this taint: an allreduce of a
    #: schedule-dependent value is rank-uniform but still varies run
    #: to run with the matching order.
    sched: set = field(default_factory=set)

    def copy(self) -> "TaintEnv":
        return TaintEnv(set(self.tainted), set(self.part_vars),
                        self.call_returns, set(self.sched))

    def join(self, other: "TaintEnv") -> "TaintEnv":
        return TaintEnv(
            self.tainted | other.tainted,
            self.part_vars & other.part_vars,
            self.call_returns,
            self.sched | other.sched,
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TaintEnv)
            and self.tainted == other.tainted
            and self.part_vars == other.part_vars
            and self.sched == other.sched
        )

    # -- expression taint ----------------------------------------------
    def expr_tainted(self, node) -> bool:
        """Is any value flowing out of this expression rank-derived?"""
        return self._tainted_walk(node)

    def _tainted_walk(self, node) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in UNIFORM_RESULTS
            ):
                return False  # rank-uniform result launders taint
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RANK_SOURCES
            ):
                return True
            if self.call_returns.get(id(node)):
                return True
            return any(
                self._tainted_walk(child)
                for child in list(node.args)
                + [kw.value for kw in node.keywords]
                + [func]
            )
        if isinstance(node, ast.Attribute):
            if node.attr in RANK_SOURCES:
                return True
            return self._tainted_walk(node.value)
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        return any(
            self._tainted_walk(child) for child in ast.iter_child_nodes(node)
        )

    # -- schedule taint (dynrace) --------------------------------------
    def expr_sched_tainted(self, node) -> bool:
        """Does any value flowing out of this expression derive from a
        wildcard receive — i.e. from a matching the schedule decides?"""
        if node is None:
            return False
        for n in ast.walk(node):
            if isinstance(n, ast.Name) and n.id in self.sched:
                return True
            if isinstance(n, ast.Call):
                event = classify_call(n)
                if event is not None and event.wildcard:
                    return True
        return False

    # -- rank pins (dynrace) -------------------------------------------
    def rank_pin(self, test) -> Optional[int]:
        """The integer constant when ``test`` pins the true arm to one
        rank (``ep.rank == 0``, ``rel == n - 1`` is not constant so
        None).  Only rank-denoting names count — ``status.source == 1``
        compares a *received* rank, which says nothing about who is
        executing the arm."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            return None
        left, right = test.left, test.comparators[0]
        for expr, const in ((left, right), (right, left)):
            if not (
                isinstance(const, ast.Constant)
                and isinstance(const.value, int)
                and not isinstance(const.value, bool)
            ):
                continue
            dotted = _dotted(expr)
            if dotted is not None and dotted.split(".")[-1] in _RANK_NAMES:
                return const.value
        return None

    # -- participation conditions --------------------------------------
    def participation_info(self, test) -> Optional[tuple]:
        """Classify a branch condition's relationship to
        ``ctx.participating()``.  Returns ``(true_part, false_part)``
        — the participation state implied on each edge, each one of
        ``"active"``, ``"removed"``, or None (unrefined) — or None
        when the test says nothing about participation:

        * ``ctx.participating()`` (or a var bound to it) →
          ``("active", "removed")``: the arms split the world exactly;
        * ``not ctx.participating()`` → ``("removed", "active")``;
        * ``cfg.collect and ctx.participating()`` →
          ``("active", None)``: the true arm still runs only on active
          ranks, but the false arm is a mix (removed ranks *plus*
          active ranks failing the other conjunct) and must not be
          refined.
        """
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self.participation_info(test.operand)
            return None if inner is None else (inner[1], inner[0])
        if isinstance(test, ast.Call) and isinstance(
            test.func, ast.Attribute
        ) and test.func.attr == "participating":
            return ("active", "removed")
        if isinstance(test, ast.Name) and test.id in self.part_vars:
            return ("active", "removed")
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for v in test.values:
                sub = self.participation_info(v)
                if sub is not None and sub[0] is not None:
                    # the true edge implies every conjunct held
                    return (sub[0], None)
        return None

    def participation_polarity(self, test) -> Optional[bool]:
        """True when ``test`` is exactly ``ctx.participating()`` (or a
        var bound to it), False for the negation, None otherwise."""
        info = self.participation_info(test)
        if info == ("active", "removed"):
            return True
        if info == ("removed", "active"):
            return False
        return None

    # -- assignment transfer -------------------------------------------
    def assign(self, targets, value) -> None:
        taint = self.expr_tainted(value) if value is not None else False
        sched = self.expr_sched_tainted(value) if value is not None else False
        is_part = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "participating"
        )
        for t in targets:
            for name_node in ast.walk(t):
                if isinstance(name_node, ast.Name):
                    if taint:
                        self.tainted.add(name_node.id)
                    else:
                        self.tainted.discard(name_node.id)
                    if sched:
                        self.sched.add(name_node.id)
                    else:
                        self.sched.discard(name_node.id)
                    if is_part:
                        self.part_vars.add(name_node.id)
                    else:
                        self.part_vars.discard(name_node.id)
