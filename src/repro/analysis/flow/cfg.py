"""Per-function control-flow graphs over Python ASTs.

The CFG is the substrate for dynflow's dataflow pass: basic blocks of
simple statements connected by typed edges, with branching blocks
keeping a reference to their test expression so the abstract
interpreter can refine state along ``true``/``false`` edges (the
``ctx.participating()`` refinement that powers DYN503).

The builder handles the shapes that trip up naive walkers:

* ``while``/``for`` with ``else`` — the else body runs on normal loop
  exit only; ``break`` jumps past it;
* ``try``/``except``/``else``/``finally`` — every statement of the try
  body may transfer to each handler; ``return``/``raise``/``break``/
  ``continue`` route *through* the pending ``finally`` blocks before
  leaving;
* nested function definitions and comprehensions stay inside their
  enclosing block (they are values, not control flow; the call graph
  resolves into them separately).

Edge kinds: ``next`` (fallthrough), ``true``/``false`` (branch),
``loop`` (head into body), ``back`` (body to head), ``exit``
(loop head to after/else), ``break``, ``continue``, ``except``,
``finally``, ``return``, ``raise``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Edge", "Block", "CFG", "build_cfg", "loop_depth_map"]


@dataclass(frozen=True)
class Edge:
    dst: int
    kind: str


@dataclass
class Block:
    idx: int
    label: str
    stmts: list = field(default_factory=list)
    succ: list = field(default_factory=list)
    #: test expression when this block ends in a conditional branch
    cond: Optional[ast.expr] = None

    def edge(self, dst: int, kind: str) -> None:
        e = Edge(dst, kind)
        if e not in self.succ:
            self.succ.append(e)


class CFG:
    """Blocks indexed by position; ``entry`` is 0, ``exit`` is 1."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: list[Block] = []
        self.entry = self.new_block("entry").idx
        self.exit = self.new_block("exit").idx
        #: id(ast test node) -> block idx, for taint lookups at branches
        self.cond_blocks: dict[int, int] = {}

    def new_block(self, label: str) -> Block:
        b = Block(len(self.blocks), label)
        self.blocks.append(b)
        return b

    def preds(self, idx: int) -> list:
        return [b.idx for b in self.blocks if any(e.dst == idx for e in b.succ)]

    def reachable(self, start: Optional[int] = None) -> set:
        seen: set = set()
        stack = [self.entry if start is None else start]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(e.dst for e in self.blocks[i].succ)
        return seen

    def edges(self) -> list:
        return [(b.idx, e.dst, e.kind) for b in self.blocks for e in b.succ]

    def block_of_cond(self, test: ast.expr) -> Optional[Block]:
        i = self.cond_blocks.get(id(test))
        return None if i is None else self.blocks[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"CFG({self.name})"]
        for b in self.blocks:
            succ = ", ".join(f"{e.kind}->{e.dst}" for e in b.succ)
            lines.append(f"  [{b.idx}] {b.label} ({len(b.stmts)} stmts) {succ}")
        return "\n".join(lines)


class _LoopCtx:
    def __init__(self, break_to: int, continue_to: int):
        self.break_to = break_to
        self.continue_to = continue_to


class _Builder:
    def __init__(self, name: str):
        self.cfg = CFG(name)
        self.loops: list[_LoopCtx] = []
        #: innermost-first entry blocks of pending finally bodies
        self.finally_stack: list[int] = []
        #: entry blocks of handlers covering the current region
        self.handler_stack: list[list[int]] = []

    # -- plumbing -------------------------------------------------------
    def _leave(self, block: Block, target: int, kind: str) -> None:
        """Route an abrupt exit (return/raise/break/continue) through
        any pending finally bodies before reaching ``target``."""
        if self.finally_stack:
            block.edge(self.finally_stack[-1], "finally")
            # the finally body's own exit edge to ``target`` is added
            # when the try statement is lowered; over-approximating the
            # continuation (finally -> every pending target) is fine
            # for reachability and dataflow.
            self._pending_finally_exits.setdefault(
                self.finally_stack[-1], set()
            ).add((target, kind))
        else:
            block.edge(target, kind)

    _pending_finally_exits: dict

    # -- statement lists ------------------------------------------------
    def build(self, fn) -> CFG:
        self._pending_finally_exits = {}
        body_entry = self.cfg.new_block("body")
        self.cfg.blocks[self.cfg.entry].edge(body_entry.idx, "next")
        last = self.stmts(fn.body, body_entry)
        if last is not None:
            last.edge(self.cfg.exit, "next")
        return self.cfg

    def stmts(self, body: list, cur: Block) -> Optional[Block]:
        """Lower a statement list starting in ``cur``; returns the
        block control falls out of, or None if nothing falls through."""
        for stmt in body:
            if cur is None:
                # unreachable code after return/raise/break — keep it
                # in a fresh orphan block so it still exists in the CFG
                cur = self.cfg.new_block("unreachable")
            cur = self.stmt(stmt, cur)
        return cur

    # -- individual statements ------------------------------------------
    def stmt(self, node, cur: Block) -> Optional[Block]:
        handler = getattr(self, f"_s_{type(node).__name__}", None)
        if handler is not None:
            return handler(node, cur)
        cur.stmts.append(node)
        # any statement inside a try body may raise into the handlers
        if self.handler_stack:
            for h in self.handler_stack[-1]:
                cur.edge(h, "except")
        return cur

    def _s_If(self, node: ast.If, cur: Block) -> Optional[Block]:
        cur.stmts.append(node)
        cur.cond = node.test
        self.cfg.cond_blocks[id(node.test)] = cur.idx
        then_b = self.cfg.new_block("then")
        cur.edge(then_b.idx, "true")
        join = self.cfg.new_block("join")
        then_end = self.stmts(node.body, then_b)
        if then_end is not None:
            then_end.edge(join.idx, "next")
        if node.orelse:
            else_b = self.cfg.new_block("else")
            cur.edge(else_b.idx, "false")
            else_end = self.stmts(node.orelse, else_b)
            if else_end is not None:
                else_end.edge(join.idx, "next")
        else:
            cur.edge(join.idx, "false")
        return join

    def _loop(self, node, cur: Block, label: str) -> Optional[Block]:
        head = self.cfg.new_block(f"{label}-head")
        cur.edge(head.idx, "next")
        head.stmts.append(node)
        test = node.test if isinstance(node, ast.While) else node.iter
        head.cond = test
        self.cfg.cond_blocks[id(test)] = head.idx
        body_b = self.cfg.new_block(f"{label}-body")
        head.edge(body_b.idx, "loop")
        after = self.cfg.new_block(f"{label}-after")
        self.loops.append(_LoopCtx(after.idx, head.idx))
        body_end = self.stmts(node.body, body_b)
        self.loops.pop()
        if body_end is not None:
            body_end.edge(head.idx, "back")
        if node.orelse:
            # else body runs on *normal* exhaustion only; break edges
            # already point straight at ``after``
            else_b = self.cfg.new_block(f"{label}-else")
            head.edge(else_b.idx, "exit")
            else_end = self.stmts(node.orelse, else_b)
            if else_end is not None:
                else_end.edge(after.idx, "next")
        else:
            head.edge(after.idx, "exit")
        return after

    def _s_While(self, node, cur):
        return self._loop(node, cur, "while")

    def _s_For(self, node, cur):
        return self._loop(node, cur, "for")

    _s_AsyncFor = _s_For

    def _s_Break(self, node, cur: Block) -> None:
        cur.stmts.append(node)
        if self.loops:
            self._leave(cur, self.loops[-1].break_to, "break")
        return None

    def _s_Continue(self, node, cur: Block) -> None:
        cur.stmts.append(node)
        if self.loops:
            self._leave(cur, self.loops[-1].continue_to, "continue")
        return None

    def _s_Return(self, node, cur: Block) -> None:
        cur.stmts.append(node)
        self._leave(cur, self.cfg.exit, "return")
        return None

    def _s_Raise(self, node, cur: Block) -> None:
        cur.stmts.append(node)
        if self.handler_stack and self.handler_stack[-1]:
            for h in self.handler_stack[-1]:
                cur.edge(h, "except")
        self._leave(cur, self.cfg.exit, "raise")
        return None

    def _s_Try(self, node: ast.Try, cur: Block) -> Optional[Block]:
        join = self.cfg.new_block("try-join")
        fin_entry = None
        if node.finalbody:
            fin_entry = self.cfg.new_block("finally")
            self.finally_stack.append(fin_entry.idx)

        handler_entries = [
            self.cfg.new_block(f"except-{i}") for i in range(len(node.handlers))
        ]
        try_b = self.cfg.new_block("try")
        cur.edge(try_b.idx, "next")
        self.handler_stack.append([h.idx for h in handler_entries])
        try_end = self.stmts(node.body, try_b)
        self.handler_stack.pop()

        after_body = join.idx if fin_entry is None else fin_entry.idx
        after_kind = "next" if fin_entry is None else "finally"
        if node.orelse:
            else_b = self.cfg.new_block("try-else")
            if try_end is not None:
                try_end.edge(else_b.idx, "next")
            else_end = self.stmts(node.orelse, else_b)
            if else_end is not None:
                else_end.edge(after_body, after_kind)
        elif try_end is not None:
            try_end.edge(after_body, after_kind)

        for h, entry in zip(node.handlers, handler_entries):
            entry.stmts.append(h)
            h_end = self.stmts(h.body, entry)
            if h_end is not None:
                h_end.edge(after_body, after_kind)

        if fin_entry is not None:
            self.finally_stack.pop()
            fin_end = self.stmts(node.finalbody, fin_entry)
            if fin_end is not None:
                fin_end.edge(join.idx, "next")
                for target, kind in self._pending_finally_exits.pop(
                    fin_entry.idx, ()
                ):
                    fin_end.edge(target, kind)
            else:
                self._pending_finally_exits.pop(fin_entry.idx, None)
            if not node.handlers:
                # no handler: an exception in the body still runs the
                # finally body, then propagates
                try_b.edge(fin_entry.idx, "except")
        return join

    _s_TryStar = _s_Try  # 3.11 except* groups: same block structure

    def _s_With(self, node, cur: Block) -> Optional[Block]:
        cur.stmts.append(node)
        return self.stmts(node.body, cur)

    _s_AsyncWith = _s_With

    def _s_Match(self, node, cur: Block) -> Optional[Block]:
        cur.stmts.append(node)
        cur.cond = node.subject
        self.cfg.cond_blocks[id(node.subject)] = cur.idx
        join = self.cfg.new_block("match-join")
        for i, case in enumerate(node.cases):
            case_b = self.cfg.new_block(f"case-{i}")
            cur.edge(case_b.idx, "true")
            end = self.stmts(case.body, case_b)
            if end is not None:
                end.edge(join.idx, "next")
        cur.edge(join.idx, "false")  # no case matched
        return join


def build_cfg(fn) -> CFG:
    """Build the CFG of one ``ast.FunctionDef`` /
    ``ast.AsyncFunctionDef`` (or any object with ``.body``)."""
    name = getattr(fn, "name", "<stmts>")
    return _Builder(name).build(fn)


def loop_depth_map(fn) -> dict:
    """Loop-nesting depth annotation for dynperf's heat model.

    Maps ``id(node)`` -> the number of loop bodies enclosing ``node``
    within ``fn``'s own body.  Nested function/lambda scopes are
    excluded (their statements execute when *they* are called, not at
    this function's loop depth).  Comprehension elements and non-first
    generators count as one level deeper than the comprehension itself
    — they run once per produced element.
    """
    depths: dict = {}
    comp_types = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

    def visit_fields(node, depth: int, deeper) -> None:
        """Visit ``node``'s children, sending the fields named in
        ``deeper`` (or flagged by it) one loop level down."""
        for fld, value in ast.iter_fields(node):
            children = value if isinstance(value, list) else [value]
            for child in children:
                if isinstance(child, ast.AST):
                    visit(child, depth + 1 if deeper(fld, child) else depth)

    def visit(node, depth: int) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        depths[id(node)] = depth
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            visit_fields(node, depth, lambda fld, _c: fld == "body")
        elif isinstance(node, comp_types):
            first_iter = node.generators[0].iter if node.generators else None
            visit_fields(node, depth, lambda _f, c: c is not first_iter)
        else:
            for child in ast.iter_child_nodes(node):
                visit(child, depth)

    for stmt in getattr(fn, "body", []):
        visit(stmt, 0)
    return depths
