"""Findings, diagnostics, suppressions, and baselines for dynflow.

A :class:`FlowFinding` is one DYN5xx diagnostic.  Unlike the lint
findings (one line, one message), flow findings carry *path-sensitive*
context: for a divergence finding the two communication traces a pair
of ranks would emit are rendered side by side, so the reader sees the
mismatch instead of reconstructing it.

=======  ==========================================================
code     meaning
=======  ==========================================================
DYN501   collective sequence diverges across the arms of a
         rank-dependent branch — some ranks emit a collective the
         others never enter (deadlock or silent data skew)
DYN502   a loop whose trip count is rank-dependent contains a
         collective — different ranks execute it a different
         number of times
DYN503   send-in from a removed rank: an active-group collective
         or a send is reachable on a path where
         ``ctx.participating()`` is statically false (paper 4.4:
         removed nodes skip send-in, they only receive send-out)
DYN504   computation touches array rows outside the owned+halo
         region declared by the phase's DRSD accesses
DYN505   collectives pair up across a rank-dependent branch but
         with different signatures (op/root/scope) — matched in
         count, mismatched in meaning
=======  ==========================================================

Suppression: put ``# dynflow: ok`` on the line the finding anchors
to, or check the finding's fingerprint into a baseline file
(``--baseline findings.json`` / ``--write-baseline``).  Fingerprints
deliberately exclude line numbers so a baseline survives unrelated
edits to the same file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

# baseline files are shared analyzer-wide (repro.analysis.baseline);
# re-exported here so the historical ``flow.report`` import path keeps
# working
from ..baseline import load_baseline, save_baseline  # noqa: F401

__all__ = [
    "CODES",
    "FlowFinding",
    "SideBySide",
    "load_baseline",
    "save_baseline",
    "render_findings",
    "findings_to_json",
]

#: one-line summaries, used by ``--json`` output and the docs table.
#: dynrace (``repro.analysis.race``) and dynperf
#: (``repro.analysis.perf``) report through the same
#: :class:`FlowFinding` type, so their DYN7xx/DYN10xx codes live
#: here too.
CODES = {
    "DYN501": "collective sequence diverges on a rank-dependent branch",
    "DYN502": "rank-dependent loop bound around a collective",
    "DYN503": "send-in reachable on a removed (non-participating) path",
    "DYN504": "array access outside the owned+halo region",
    "DYN505": "collective signature mismatch across a rank-dependent branch",
    "DYN701": "wildcard receive matchable by concurrent sends from "
              "several sources",
    "DYN702": "schedule-dependent branch changes subsequent communication",
    "DYN703": "unordered set iteration feeds message/event ordering",
    "DYN704": "RNG outside the seeded StreamRegistry home",
    "DYN705": "float accumulation order depends on set iteration",
    "DYN1001": "allocation inside a hot loop",
    "DYN1002": "linear scan on the per-event path",
    "DYN1003": "nested rank iteration (quadratic in world size)",
    "DYN1004": "loop-invariant work repeated inside a hot loop",
    "DYN1005": "exception control flow or eager formatting per event",
    "DYN1006": "expensive call result discarded in the hot zone",
}

SUPPRESS_MARK = "dynflow: ok"


@dataclass(frozen=True)
class SideBySide:
    """The two diverging communication traces of a DYN501/503/505
    finding, already rendered one event per line."""

    left_label: str
    right_label: str
    left: tuple
    right: tuple

    def lines(self, indent: str = "    ") -> list:
        width = max(
            [len(self.left_label)] + [len(s) for s in self.left] + [24]
        )
        out = [
            f"{indent}{self.left_label:<{width}} | {self.right_label}",
            f"{indent}{'-' * width}-+-{'-' * max(len(self.right_label), 24)}",
        ]
        n = max(len(self.left), len(self.right))
        lefts = list(self.left) + [""] * (n - len(self.left))
        rights = list(self.right) + [""] * (n - len(self.right))
        if not self.left:
            lefts = ["(no communication)"] + [""] * (n - 1) if n else []
        if not self.right:
            rights = ["(no communication)"] + [""] * (n - 1) if n else []
        for ls, rs in zip(lefts, rights):
            out.append(f"{indent}{ls:<{width}} | {rs}")
        return out


@dataclass(frozen=True)
class FlowFinding:
    path: str
    line: int
    col: int
    code: str
    function: str        # qualified name of the analyzed function
    message: str
    anchor: str = ""     # line-independent fingerprint material
    side_by_side: Optional[SideBySide] = None
    hint: str = ""
    detail: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def fingerprint(self) -> str:
        """Stable id for baselines: no line numbers, so the entry
        survives edits elsewhere in the file."""
        raw = f"{self.code}|{self.path}|{self.function}|{self.anchor}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def render(self) -> str:
        lines = [
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.function}] {self.message}"
        ]
        if self.side_by_side is not None:
            lines.extend(self.side_by_side.lines())
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        d = {
            "code": self.code,
            "summary": CODES.get(self.code, ""),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.side_by_side is not None:
            d["traces"] = {
                "left_label": self.side_by_side.left_label,
                "right_label": self.side_by_side.right_label,
                "left": list(self.side_by_side.left),
                "right": list(self.side_by_side.right),
            }
        if self.hint:
            d["hint"] = self.hint
        if self.detail:
            d["detail"] = self.detail
        return d




def render_findings(findings) -> str:
    return "\n".join(f.render() for f in findings)


def findings_to_json(findings, *, suppressed: int = 0,
                     elapsed: Optional[float] = None) -> dict:
    out = {
        "tool": "dynflow",
        "count": len(findings),
        "suppressed": suppressed,
        "findings": [f.to_json() for f in findings],
    }
    if elapsed is not None:
        out["elapsed_seconds"] = round(elapsed, 3)
    return out
