"""dynflow — whole-program communication-flow analysis.

The third static layer of the analysis suite (after the plan verifier
and the AST lint): build per-function CFGs, resolve an interprocedural
call graph rooted at the application entry points, and abstractly
interpret each program into its *communication trace summary* — the
sequence of collective/p2p signatures a rank may emit along each path.

Three analyses run over the summaries:

* **collective matching** — every rank must emit the same world/active
  collective sequence; divergence across a rank-dependent branch is
  DYN501/DYN505, a rank-dependent trip count around a collective is
  DYN502;
* **removed-path send-in** — the paper's 4.4 invariant: a removed rank
  only *receives*; an active-group collective or send reachable where
  ``ctx.participating()`` is statically false is DYN503;
* **static ownership** — array accesses are evaluated against a
  witness partition and checked against the declared owned+halo
  region using the runtime's own :class:`IntervalSet`; an access
  outside it is DYN504.

Usage::

    python -m repro.analysis flow src/repro examples
    python -m repro.analysis flow --json --max-seconds 30 src/repro

Suppress a finding with ``# dynflow: ok`` on its line, or carry a
baseline file (``--write-baseline`` / ``--baseline``).
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Optional

from .callgraph import Registry, load_registry
from .cfg import CFG, build_cfg
from .collectives import CollectiveAnalyzer
from .domain import CommEvent, TaintEnv, classify_call, skeleton
from .ownership import OwnershipAnalyzer
from .report import (
    CODES,
    FlowFinding,
    SideBySide,
    findings_to_json,
    load_baseline,
    render_findings,
    save_baseline,
)

__all__ = [
    "CODES",
    "CFG",
    "CommEvent",
    "FlowFinding",
    "Registry",
    "SideBySide",
    "TaintEnv",
    "analyze_paths",
    "build_cfg",
    "classify_call",
    "load_registry",
    "run_flow",
    "skeleton",
]


def analyze_paths(paths: Iterable) -> list:
    """Run all dynflow analyses over ``paths``; returns the findings
    sorted by position (line-level ``# dynflow: ok`` suppressions
    already applied, baseline filtering left to the caller)."""
    registry = load_registry(paths)
    findings = CollectiveAnalyzer(registry).run()
    findings += OwnershipAnalyzer(registry).run()
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def run_flow(
    paths: Iterable,
    *,
    json_out: bool = False,
    quiet: bool = False,
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
    max_seconds: Optional[float] = None,
    stream=None,
) -> int:
    """CLI driver.  Exit codes: 0 clean, 1 findings, 2 usage or
    internal error (including a blown ``--max-seconds`` budget)."""
    out = stream if stream is not None else sys.stdout
    t0 = time.monotonic()
    try:
        findings = analyze_paths(paths)
    except Exception as exc:  # internal error, not a finding
        print(f"dynflow: internal error: {exc!r}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - t0

    if write_baseline:
        save_baseline(write_baseline, findings)

    suppressed = 0
    if baseline:
        known = load_baseline(baseline)
        kept = [f for f in findings if f.fingerprint not in known]
        suppressed = len(findings) - len(kept)
        findings = kept

    if json_out:
        import json as _json

        print(
            _json.dumps(
                findings_to_json(
                    findings, suppressed=suppressed, elapsed=elapsed
                ),
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    elif findings:
        print(render_findings(findings), file=out)
        if not quiet:
            print(
                f"dynflow: {len(findings)} finding(s)"
                + (f", {suppressed} baselined" if suppressed else ""),
                file=out,
            )
    elif not quiet:
        print(
            f"dynflow: clean"
            + (f" ({suppressed} baselined)" if suppressed else "")
            + f" [{elapsed:.2f}s]",
            file=out,
        )

    if max_seconds is not None and elapsed > max_seconds:
        print(
            f"dynflow: analysis took {elapsed:.1f}s, over the "
            f"--max-seconds {max_seconds:g} budget",
            file=sys.stderr,
        )
        return 2
    return 1 if findings else 0
