"""Interprocedural call graph over the analyzed file set.

dynflow is *whole-program*: it parses every file it is pointed at,
indexes all function definitions (top-level, nested, and methods) by
qualified name, resolves ``import``/``from``-import aliases between
analyzed modules, and roots the analysis at the Dyn-MPI entry points:

* functions named ``*_program`` (the application programs),
* ``main`` functions in example/driver files,
* as a fallback, any top-level function whose first parameter is
  ``ctx`` that is not reachable from another root (standalone helpers
  and test programs — this is what makes a report-only sweep over
  ``tests/`` produce useful output).

Calls on the runtime context (``ctx.allgather_active(...)``) are
communication *primitives*, not edges — the analyzer models their
semantics directly and never descends into the runtime's internals,
which are verified by plancheck and the runtime sanitizer instead.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .cfg import CFG, build_cfg

__all__ = ["FuncInfo", "ModuleInfo", "Registry", "load_registry"]


@dataclass
class FuncInfo:
    module: str
    qualname: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    path: str
    params: tuple = ()
    #: enclosing function qualname for closures, None at top level
    parent: Optional[str] = None
    is_method: bool = False
    _cfg: Optional[CFG] = None

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2]

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    @property
    def is_program(self) -> bool:
        return self.name.endswith("_program")

    @property
    def takes_ctx(self) -> bool:
        return bool(self.params) and self.params[0] == "ctx"


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    source: str
    #: local name -> ("module", modname) or ("func", modname, qualname)
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # qualname -> FuncInfo

    def line(self, lineno: int) -> str:
        lines = self.source.splitlines()
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""


def _module_name(path: pathlib.Path) -> str:
    """Dotted module name: files under a ``src`` layout or a package
    tree get their real import path, loose scripts get their stem."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):]).removesuffix(
                ".__init__"
            )
    return path.stem


class _FuncCollector(ast.NodeVisitor):
    def __init__(self, mod: ModuleInfo):
        self.mod = mod
        self.stack: list[str] = []
        self.class_stack: list[str] = []

    def _add(self, node) -> None:
        qual = ".".join(
            self.class_stack + self.stack + [node.name]
        )
        params = tuple(a.arg for a in node.args.args)
        self.mod.functions[qual] = FuncInfo(
            module=self.mod.name,
            qualname=qual,
            node=node,
            path=self.mod.path,
            params=params,
            parent=".".join(self.class_stack + self.stack) or None,
            is_method=bool(self.class_stack) and not self.stack,
        )

    def visit_FunctionDef(self, node) -> None:
        self._add(node)
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()


class Registry:
    """All analyzed modules plus name-resolution helpers."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        #: bare function name -> list of (module, qualname); used as an
        #: unambiguous-name fallback when import chains leave the set
        self._by_name: dict[str, list] = {}

    # -- loading --------------------------------------------------------
    def add_module(self, mod: ModuleInfo) -> None:
        self.modules[mod.name] = mod
        _FuncCollector(mod).visit(mod.tree)
        for qual, fi in mod.functions.items():
            if "." not in qual:  # top level only
                self._by_name.setdefault(fi.name, []).append((mod.name, qual))
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        "module", alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:  # relative import, resolve against self
                    pkg = mod.name.split(".")
                    pkg = pkg[: len(pkg) - node.level]
                    base = ".".join(pkg + [node.module]) if pkg else node.module
                for alias in node.names:
                    mod.imports[alias.asname or alias.name] = (
                        "func", base, alias.name
                    )

    # -- resolution -----------------------------------------------------
    def _find_export(self, modname: str, name: str,
                     _depth: int = 0) -> Optional[FuncInfo]:
        """Find ``name`` in ``modname``, chasing one level of package
        re-exports (``from .jacobi import jacobi_program``)."""
        if _depth > 4:
            return None
        mod = self.modules.get(modname)
        if mod is None:
            return None
        if name in mod.functions:
            return mod.functions[name]
        imp = mod.imports.get(name)
        if imp and imp[0] == "func":
            return self._find_export(imp[1], imp[2], _depth + 1)
        return None

    def resolve_call(self, call: ast.Call,
                     caller: FuncInfo) -> Optional[FuncInfo]:
        """Resolve a call expression to an analyzed function, or None
        for primitives/library calls.  Handles direct names (local
        functions, closures, imports) and one-level module attributes
        (``base.exchange_halo``)."""
        func = call.func
        mod = self.modules.get(caller.module)
        if isinstance(func, ast.Name):
            name = func.id
            # innermost enclosing scope first: sibling closures
            scope = caller.qualname
            while scope:
                parent = scope.rpartition(".")[0]
                # functions nested in the current scope shadow outer ones
                cand = f"{scope}.{name}"
                if mod and cand in mod.functions:
                    return mod.functions[cand]
                sibling = f"{parent}.{name}" if parent else name
                if mod and sibling in mod.functions:
                    return mod.functions[sibling]
                scope = parent
            if mod and name in mod.functions:
                return mod.functions[name]
            if mod:
                imp = mod.imports.get(name)
                if imp and imp[0] == "func":
                    fi = self._find_export(imp[1], imp[2])
                    if fi is not None:
                        return fi
            hits = self._by_name.get(name, [])
            if len(hits) == 1:
                m, qual = hits[0]
                return self.modules[m].functions[qual]
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if mod:
                imp = mod.imports.get(base)
                if imp and imp[0] == "module":
                    return self._find_export(imp[1], attr)
        return None

    def resolve_method_call(self, call: ast.Call,
                            caller: FuncInfo) -> Optional[FuncInfo]:
        """Resolve ``self.attr(...)`` to a method of the caller's own
        class (same module).  dynflow deliberately does not follow
        these edges — runtime internals are plancheck/sanitizer
        territory — but dynperf's hot-zone reachability must: the
        per-cycle path is method-to-method (``end_cycle`` ->
        ``self._redistribute`` -> ...)."""
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return None
        mod = self.modules.get(caller.module)
        if mod is None:
            return None
        # strip trailing function components until a class prefix hits
        parts = caller.qualname.split(".")
        for i in range(len(parts) - 1, 0, -1):
            cand = mod.functions.get(".".join(parts[:i] + [func.attr]))
            if cand is not None and cand.is_method:
                return cand
        return None

    # -- entry points ---------------------------------------------------
    def roots(self) -> list:
        """Analysis roots in deterministic order: program entry points
        and example mains first, then unreached ctx-helpers."""
        programs: list[FuncInfo] = []
        mains: list[FuncInfo] = []
        helpers: list[FuncInfo] = []
        for mod in sorted(self.modules.values(), key=lambda m: m.path):
            for qual in sorted(mod.functions):
                fi = mod.functions[qual]
                if fi.parent is not None or fi.is_method:
                    continue
                if fi.is_program:
                    programs.append(fi)
                elif fi.name == "main":
                    mains.append(fi)
                elif fi.takes_ctx:
                    helpers.append(fi)
        reached: set = set()
        for fi in programs + mains:
            self._reach(fi, reached)
        extra = [
            fi for fi in helpers
            if (fi.module, fi.qualname) not in reached
        ]
        return programs + mains + extra

    def _reach(self, fi: FuncInfo, seen: set) -> None:
        key = (fi.module, fi.qualname)
        if key in seen:
            return
        seen.add(key)
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Call):
                callee = self.resolve_call(node, fi)
                if callee is not None:
                    self._reach(callee, seen)
            elif isinstance(node, ast.Name):
                # first-class function references (run_program(cluster,
                # jacobi_program, ...)) count as reachability too
                mod = self.modules.get(fi.module)
                if mod:
                    imp = mod.imports.get(node.id)
                    target = None
                    if node.id in mod.functions:
                        target = mod.functions[node.id]
                    elif imp and imp[0] == "func":
                        target = self._find_export(imp[1], imp[2])
                    if target is not None:
                        self._reach(target, seen)

    def call_edges(self) -> list:
        """(caller, callee) qualified-name pairs — the call graph as
        data, for tests and the JSON report."""
        edges = []
        for mod in self.modules.values():
            for fi in mod.functions.values():
                for node in ast.walk(fi.node):
                    if isinstance(node, ast.Call):
                        callee = self.resolve_call(node, fi)
                        if callee is not None:
                            edges.append((
                                f"{fi.module}.{fi.qualname}",
                                f"{callee.module}.{callee.qualname}",
                            ))
        return sorted(set(edges))


def iter_files(paths: Iterable) -> list:
    files: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def load_registry(paths: Iterable) -> Registry:
    reg = Registry()
    for f in iter_files(paths):
        source = f.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(f))
        except SyntaxError:
            continue  # reported by the lint layer, not worth dying here
        reg.add_module(ModuleInfo(
            name=_module_name(f), path=str(f), tree=tree, source=source
        ))
    return reg
