"""Collective matching and rank-divergence detection (DYN501/502/503/505).

Two cooperating passes per function:

1. **CFG dataflow** — a worklist fixpoint over :mod:`flow.cfg` blocks
   computing, at every statement, the rank-taint environment and the
   *participation state* (``any`` / ``active`` / ``removed``).  Edges
   leaving a branch on ``ctx.participating()`` refine the state, so an
   early ``if not ctx.participating(): return`` correctly leaves the
   fall-through path ``active``, and the body of the removed arm is
   ``removed``.

2. **Trace extraction** — a structured walk of the same function that
   builds the communication trace summary (:mod:`flow.domain`),
   splicing in callee summaries through the call graph.  At each
   branch whose condition is rank-tainted it compares the arms'
   matchable skeletons and reports divergence with the two traces side
   by side; at each loop whose bound is rank-tainted it checks the
   body for collectives; at each emitted event it checks the
   participation state for removed-path send-in.

Interprocedural model: function summaries are memoized per *variant*
(the set of parameters rank-tainted at the call site), so a helper
that branches on a rank argument is only flagged when some caller
actually passes rank-derived data into it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Optional

from .callgraph import FuncInfo, Registry
from .domain import (
    ChoiceNode,
    CommEvent,
    LoopNode,
    TaintEnv,
    classify_call,
    events_in,
    expr_text,
    render_trace,
    skeleton,
)
from .report import SUPPRESS_MARK, FlowFinding, SideBySide

__all__ = ["Summary", "CollectiveAnalyzer"]

_MAX_DATAFLOW_ROUNDS = 200


@dataclass(frozen=True)
class Summary:
    trace: tuple
    return_tainted: bool


_EMPTY = Summary((), False)


def _part_join(a: str, b: str) -> str:
    return a if a == b else "any"


class CollectiveAnalyzer:
    def __init__(self, registry: Registry):
        self.reg = registry
        self.findings: list[FlowFinding] = []
        self._summaries: dict = {}
        self._stack: set = set()
        self._emitted: set = set()
        #: path -> ModuleInfo for suppression lookups
        self._by_path = {
            m.path: m for m in registry.modules.values()
        }

    # -- public ---------------------------------------------------------
    def run(self) -> list:
        for root in self.reg.roots():
            self.summarize(root, frozenset())
        return self.findings

    # -- findings plumbing ---------------------------------------------
    def _suppressed(self, path: str, line: int) -> bool:
        mod = self._by_path.get(path)
        return mod is not None and SUPPRESS_MARK in mod.line(line)

    def _emit(self, finding: FlowFinding) -> None:
        key = (finding.code, finding.path, finding.line, finding.anchor)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if not self._suppressed(finding.path, finding.line):
            self.findings.append(finding)

    # -- summaries ------------------------------------------------------
    def summarize(self, fi: FuncInfo, seeds: frozenset) -> Summary:
        key = (fi.module, fi.qualname, seeds)
        hit = self._summaries.get(key)
        if hit is not None:
            return hit
        guard = (fi.module, fi.qualname)
        if guard in self._stack:
            return _EMPTY  # recursion: opaque
        self._stack.add(guard)
        try:
            summary = self._analyze(fi, seeds)
        finally:
            self._stack.discard(guard)
        self._summaries[key] = summary
        return summary

    def _analyze(self, fi: FuncInfo, seeds: frozenset) -> Summary:
        call_returns: dict = {}
        callees: dict = {}
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Call):
                callee = self.reg.resolve_call(node, fi)
                if callee is not None and callee.node is not fi.node:
                    callees[id(node)] = callee
                    sub = self.summarize(callee, frozenset())
                    call_returns[id(node)] = sub.return_tainted
        states, return_tainted = self._dataflow(fi, seeds, call_returns)
        walker = _TraceWalker(self, fi, states, callees, call_returns)
        trace = walker.walk(fi.node.body)
        return Summary(trace, return_tainted)

    # -- pass 1: CFG dataflow -------------------------------------------
    def _dataflow(self, fi: FuncInfo, seeds: frozenset,
                  call_returns: dict):
        cfg = fi.cfg
        init = TaintEnv(set(seeds), set(), call_returns)
        in_states: dict = {cfg.entry: (init, "any")}
        work = [cfg.entry]
        rounds = 0
        while work and rounds < _MAX_DATAFLOW_ROUNDS * len(cfg.blocks):
            rounds += 1
            b = work.pop()
            env, part = in_states[b]
            block = cfg.blocks[b]
            out = env.copy()
            for stmt in block.stmts:
                _transfer(out, stmt)
            for edge in block.succ:
                epart = part
                if block.cond is not None and edge.kind in (
                    "true", "false", "loop", "exit"
                ):
                    info = out.participation_info(block.cond)
                    if info is not None:
                        refined = (
                            info[0] if edge.kind in ("true", "loop")
                            else info[1]
                        )
                        if refined is not None:
                            epart = refined
                prev = in_states.get(edge.dst)
                if prev is None:
                    in_states[edge.dst] = (out.copy(), epart)
                    work.append(edge.dst)
                else:
                    joined = prev[0].join(out)
                    jpart = _part_join(prev[1], epart)
                    if joined != prev[0] or jpart != prev[1]:
                        in_states[edge.dst] = (joined, jpart)
                        work.append(edge.dst)
        # final replay: per-statement states + return taint
        states: dict = {}
        return_tainted = False
        for block in cfg.blocks:
            if block.idx not in in_states:
                continue
            env, part = in_states[block.idx]
            cur = env.copy()
            for stmt in block.stmts:
                states[id(stmt)] = (cur.copy(), part)
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    if cur.expr_tainted(stmt.value):
                        return_tainted = True
                _transfer(cur, stmt)
        return states, return_tainted


def _transfer(env: TaintEnv, stmt) -> None:
    """Taint transfer for the statement *headers* stored in a block
    (compound bodies live in their own blocks)."""
    if isinstance(stmt, ast.Assign):
        env.assign(stmt.targets, stmt.value)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            env.assign([stmt.target], stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        if env.expr_tainted(stmt.value) or env.expr_tainted(stmt.target):
            env.assign([stmt.target], stmt.value)
            for n in ast.walk(stmt.target):
                if isinstance(n, ast.Name):
                    env.tainted.add(n.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        env.assign([stmt.target], stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                env.assign([item.optional_vars], item.context_expr)
    # walrus targets anywhere in the header
    header = None
    if isinstance(stmt, (ast.If, ast.While)):
        header = stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        header = stmt.iter
    elif not isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
               ast.Try, ast.Match)
    ):
        header = stmt
    if header is not None:
        for n in ast.walk(header):
            if isinstance(n, ast.NamedExpr):
                env.assign([n.target], n.value)


_DEFAULT_STATE = (TaintEnv(), "any")


class _TraceWalker:
    """Pass 2: structured trace extraction + divergence checks."""

    def __init__(self, analyzer: CollectiveAnalyzer, fi: FuncInfo,
                 states: dict, callees: dict, call_returns: dict):
        self.an = analyzer
        self.fi = fi
        self.states = states
        self.callees = callees
        self.call_returns = call_returns

    def _state(self, stmt):
        return self.states.get(id(stmt), _DEFAULT_STATE)

    # -- statement lists ------------------------------------------------
    def walk(self, stmts: list) -> tuple:
        trace: list = []
        for stmt in stmts:
            env, part = self._state(stmt)
            if isinstance(stmt, ast.If):
                trace.append(self._walk_if(stmt, env, part))
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                trace.append(self._walk_loop(stmt, env, part))
            elif isinstance(stmt, ast.Try):
                trace.extend(self._walk_try(stmt, env, part))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    trace.extend(
                        self._events(item.context_expr, env, part)
                    )
                trace.extend(self.walk(stmt.body))
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # values, not control flow
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                if getattr(stmt, "value", None) is not None:
                    trace.extend(self._events(stmt.value, env, part))
                if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                    trace.extend(self._events(stmt.exc, env, part))
                break
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                break
            else:
                trace.extend(self._events(stmt, env, part))
        return tuple(trace)

    # -- branches -------------------------------------------------------
    def _walk_if(self, node: ast.If, env: TaintEnv, part: str):
        tainted = env.expr_tainted(node.test)
        info = env.participation_info(node.test)
        arm_true = self.walk(node.body)
        arm_false = self.walk(node.orelse)
        cond = expr_text(node.test)
        if tainted:
            if info == ("active", "removed") or info == ("removed", "active"):
                active_first = info[0] == "active"
                active_arm = arm_true if active_first else arm_false
                removed_arm = arm_false if active_first else arm_true
                self._check_arms(
                    node, cond, active_arm, removed_arm,
                    scopes=("world",),
                    labels=("participating ranks", "removed ranks"),
                    participation=True,
                )
            elif info is not None:
                # one arm is active-only (participation is a conjunct):
                # active-scope asymmetry is fine, world-scope must match
                self._check_arms(
                    node, cond, arm_true, arm_false,
                    scopes=("world",),
                    labels=(f"ranks where `{cond}`",
                            f"ranks where not `{cond}`"),
                    participation=True,
                )
            else:
                self._check_arms(
                    node, cond, arm_true, arm_false,
                    scopes=("world", "active"),
                    labels=(f"ranks where `{cond}`",
                            f"ranks where not `{cond}`"),
                )
        return ChoiceNode(
            arms=(arm_true, arm_false), cond=cond, tainted=tainted,
            participation=info is not None, line=node.lineno,
            pin=env.rank_pin(node.test),
            sched=env.expr_sched_tainted(node.test),
            path=self.fi.path, func=self.fi.qualname,
        )

    def _check_arms(self, node, cond, arm_a, arm_b, *, scopes,
                    labels, participation=False) -> None:
        skel_a = skeleton(arm_a, scopes)
        skel_b = skeleton(arm_b, scopes)
        if skel_a == skel_b:
            return
        code = "DYN501"
        what = "collective sequence diverges"
        if (
            len(skel_a) == len(skel_b)
            and all(
                isinstance(a, tuple) and isinstance(b, tuple)
                and len(a) == 4 and len(b) == 4 and a[2] == b[2]
                for a, b in zip(skel_a, skel_b)
            )
        ):
            code = "DYN505"
            what = "collective signatures differ"
        scope_txt = "/".join(scopes)
        hint = (
            "every rank must emit the same collective sequence; move the "
            "collective out of the rank-dependent branch or mirror it on "
            "the other arm"
        )
        if participation:
            hint = (
                "removed ranks still receive send-out (paper 4.4): world-"
                "scope collectives like global_reduce/begin_cycle must be "
                "reachable on the non-participating path too"
            )
        self.an._emit(FlowFinding(
            path=self.fi.path,
            line=node.lineno,
            col=node.col_offset,
            code=code,
            function=self.fi.qualname,
            message=(
                f"{what} across rank-dependent branch `{cond}` "
                f"({scope_txt}-scope events must match on both arms)"
            ),
            anchor=f"{cond}|{skel_a!r}|{skel_b!r}",
            side_by_side=SideBySide(
                left_label=labels[0],
                right_label=labels[1],
                left=tuple(render_trace(arm_a)),
                right=tuple(render_trace(arm_b)),
            ),
            hint=hint,
        ))

    # -- loops ----------------------------------------------------------
    def _walk_loop(self, node, env: TaintEnv, part: str):
        bound_expr = node.test if isinstance(node, ast.While) else node.iter
        tainted = env.expr_tainted(bound_expr)
        body = self.walk(node.body)
        if node.orelse:
            body = body + self.walk(node.orelse)
        bound = expr_text(bound_expr)
        if tainted and skeleton(body):
            colls = events_in(body, kinds=("coll", "cycle"))
            names = ", ".join(
                sorted({e.name for e in colls})
            ) or "collective"
            self.an._emit(FlowFinding(
                path=self.fi.path,
                line=node.lineno,
                col=node.col_offset,
                code="DYN502",
                function=self.fi.qualname,
                message=(
                    f"loop bound `{bound}` is rank-dependent but the body "
                    f"enters {names} — ranks would execute a different "
                    f"number of collectives"
                ),
                anchor=f"{bound}|{names}",
                side_by_side=SideBySide(
                    left_label=f"each iteration of `{bound}`",
                    right_label="ranks with fewer iterations",
                    left=tuple(render_trace(body)),
                    right=("(collective never entered)",),
                ),
                hint=(
                    "hoist the collective out of the loop or derive the "
                    "trip count from rank-uniform data (config values or "
                    "a collective result)"
                ),
            ))
        return LoopNode(
            body=body, bound=bound, tainted=tainted, line=node.lineno
        )

    # -- try ------------------------------------------------------------
    def _walk_try(self, node: ast.Try, env, part) -> list:
        out: list = []
        body = self.walk(node.body) + self.walk(node.orelse)
        arms = [body] + [self.walk(h.body) for h in node.handlers]
        if len(arms) > 1 and any(a != arms[0] for a in arms):
            out.append(ChoiceNode(
                arms=tuple(arms), cond="<exception>", tainted=False,
                line=node.lineno,
            ))
        else:
            out.extend(body)
        out.extend(self.walk(node.finalbody))
        return out

    # -- events ---------------------------------------------------------
    def _events(self, node, env: TaintEnv, part: str) -> list:
        """Collect comm events and callee splices from one statement
        or expression, in approximate evaluation order."""
        out: list = []
        self._scan(node, env, part, out)
        return out

    def _scan(self, node, env: TaintEnv, part: str, out: list) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # bodies run at their call sites, not here
        for child in ast.iter_child_nodes(node):
            self._scan(child, env, part, out)
        if not isinstance(node, ast.Call):
            return
        event = classify_call(node)
        if event is not None:
            out.append(replace(
                event, path=self.fi.path, func=self.fi.qualname
            ))
            if part == "removed" and (
                event.scope == "active" or event.kind == "send"
            ):
                self._emit_503(node, event.render(), env)
            return
        callee = self.callees.get(id(node))
        if callee is None:
            return
        seeds = self._callee_seeds(node, callee, env)
        summary = self.an.summarize(callee, seeds)
        out.extend(summary.trace)
        if part == "removed":
            bad = events_in(summary.trace, scopes=("active",)) + [
                e for e in events_in(summary.trace, kinds=("send",))
                if e.scope == "p2p"
            ]
            if bad:
                self._emit_503(
                    node,
                    f"{callee.qualname}() emitting "
                    + ", ".join(sorted({e.name for e in bad})),
                    env,
                )

    def _callee_seeds(self, call: ast.Call, callee: FuncInfo,
                      env: TaintEnv) -> frozenset:
        seeds = set()
        params = callee.params
        for i, arg in enumerate(call.args):
            if i < len(params) and env.expr_tainted(arg):
                seeds.add(params[i])
        for kw in call.keywords:
            if kw.arg and kw.arg in params and env.expr_tainted(kw.value):
                seeds.add(kw.arg)
        return frozenset(seeds)

    def _emit_503(self, node, what: str, env: TaintEnv) -> None:
        self.an._emit(FlowFinding(
            path=self.fi.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code="DYN503",
            function=self.fi.qualname,
            message=(
                f"send-in on a removed path: {what} is reachable where "
                f"ctx.participating() is statically false"
            ),
            anchor=f"removed|{what}",
            hint=(
                "a removed rank only *receives* (send-out) — paper 4.4; "
                "guard the send/active collective with ctx.participating()"
            ),
        ))
