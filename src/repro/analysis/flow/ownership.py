"""Static ownership checking (DYN504).

Propagates ownership symbolically through the array accesses of an
application program: which global rows may ``arr.row(...)`` /
``arr.set_row(...)`` / ``arr.hold([...])`` touch, versus the
owned+halo region the program *declared* with
``ctx.add_array_access(phase, name, mode, lo_off=..., hi_off=...)``.

The abstract value of an index expression is an interval, and the
region algebra is the runtime's own :class:`IntervalSet` — the
analyzer reuses the data structure the redistribution planner trades
in, so "outside owned+halo" means exactly what plancheck means by it.

Rather than solving symbolic constraints, the checker *partially
evaluates* each program against an interior witness partition::

    s, e = ctx.my_bounds()   ->  (407, 613)   on a 1000-row array

chosen away from the array edges so that boundary guards like
``if g > 0`` are decidable and row arithmetic stays exact.  Witness
soundness: every access polynomial the apps use is monotone in
``s``/``e``/loop bounds, so a violation at the witness is a real
violation and an in-bounds witness access generalizes to any interior
partition.  Behavior *at* the array edges (rank 0 / rank N-1) is not
modeled — see the limitations section in docs/ANALYSIS.md.

Interprocedurally the evaluator follows resolved calls (including the
``exec_rows`` callbacks handed to ``ctx.compute``), binding parameters
to abstract values so helpers like ``exchange_halo(ctx, src, ...)``
are checked against whichever concrete array flows in.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from ..._intervals import IntervalSet
from .callgraph import FuncInfo, Registry
from .domain import expr_text
from .report import FlowFinding, SUPPRESS_MARK

__all__ = ["OwnershipAnalyzer", "WITNESS_S", "WITNESS_E", "WITNESS_ROWS"]

# the interior witness partition: rows [407, 613] of a 1000-row array
WITNESS_S = 407
WITNESS_E = 613
WITNESS_ROWS = 1000

_MAX_DEPTH = 8
_ACCESS_METHODS = {"row", "set_row", "hold", "rows", "get_row"}

TOP = object()  # unknown value


@dataclass(frozen=True)
class IV:
    """Inclusive integer interval abstract value."""
    lo: int
    hi: int

    @classmethod
    def point(cls, v: int) -> "IV":
        return cls(int(v), int(v))


@dataclass
class ArrRef:
    """A registered distributed array flowing through the program."""
    name: str
    declared: Optional[tuple] = None  # (lo_off, hi_off) once declared


@dataclass(frozen=True)
class RangeVal:
    start: IV
    stop: IV


@dataclass(frozen=True)
class FuncVal:
    """A first-class reference to an analyzed function + the env its
    closure captured (jacobi's ``exec_rows`` pattern)."""
    fi: FuncInfo
    env: dict = field(hash=False, compare=False, default_factory=dict)


class _CtxVal:
    pass


CTX = _CtxVal()


def _iv_bin(op, a: IV, b: IV) -> object:
    corners = [op(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    try:
        return IV(min(corners), max(corners))
    except TypeError:  # pragma: no cover - non-int result
        return TOP


class OwnershipAnalyzer:
    """Run the witness evaluator over every ``*_program`` root."""

    def __init__(self, registry: Registry):
        self.reg = registry
        self.findings: list[FlowFinding] = []
        self._emitted: set = set()
        self._by_path = {m.path: m for m in registry.modules.values()}

    def run(self) -> list:
        for root in self.reg.roots():
            if root.takes_ctx:
                _Evaluator(self, root).run()
        return self.findings

    def emit(self, fi: FuncInfo, node, arr: ArrRef, idx: IV,
             allowed: IntervalSet, bad: IntervalSet) -> None:
        line = getattr(node, "lineno", 0)
        accessed = expr_text(node)
        key = ("DYN504", fi.path, line, accessed)
        if key in self._emitted:
            return
        self._emitted.add(key)
        mod = self._by_path.get(fi.path)
        if mod is not None and SUPPRESS_MARK in mod.line(line):
            return
        self.findings.append(FlowFinding(
            path=fi.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            code="DYN504",
            function=fi.qualname,
            message=(
                f"`{accessed}` touches rows {bad} of array "
                f"'{arr.name}' outside its owned+halo region {allowed} "
                f"(witness partition s={WITNESS_S}, e={WITNESS_E})"
            ),
            anchor=f"{arr.name}|{accessed}",
            hint=(
                "widen the declared halo (add_array_access lo_off/"
                "hi_off) or restrict the index to the owned block; "
                "rows outside owned+halo are not redistributed to "
                "this rank"
            ),
            detail={
                "array": arr.name,
                "accessed": [list(s) for s in bad.spans],
                "allowed": [list(s) for s in allowed.spans],
            },
        ))


class _Evaluator:
    def __init__(self, an: OwnershipAnalyzer, root: FuncInfo):
        self.an = an
        self.root = root
        #: array name -> (lo_off, hi_off) from add_array_access calls
        self.declared: dict[str, tuple] = {}
        self.arrays: dict[str, ArrRef] = {}
        self.depth = 0

    def run(self) -> None:
        env: dict = {p: TOP for p in self.root.params}
        env[self.root.params[0]] = CTX
        self._body(self.root, self.root.node.body, env)

    # -- region check ---------------------------------------------------
    def _allowed(self, arr: ArrRef) -> IntervalSet:
        lo_off, hi_off = self.declared.get(arr.name, (0, 0))
        halo = IntervalSet.span(WITNESS_S + lo_off, WITNESS_E + hi_off)
        owned = IntervalSet.span(WITNESS_S, WITNESS_E)
        return (halo | owned).clip(0, WITNESS_ROWS - 1)

    def _check(self, fi: FuncInfo, node, arr: ArrRef, idx) -> None:
        if not isinstance(idx, IV):
            return  # unknown index: out of the abstraction's reach
        touched = IntervalSet.span(idx.lo, idx.hi)
        allowed = self._allowed(arr)
        if not allowed.issuperset(touched):
            self.an.emit(fi, node, arr, idx, allowed,
                         touched.subtract(allowed))

    # -- statements -----------------------------------------------------
    def _body(self, fi: FuncInfo, stmts: list, env: dict) -> None:
        for stmt in stmts:
            self._stmt(fi, stmt, env)

    def _stmt(self, fi: FuncInfo, stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            val = self._eval(fi, stmt.value, env)
            for t in stmt.targets:
                self._bind(fi, t, val, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(fi, stmt.target, self._eval(fi, stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(fi, stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = TOP
        elif isinstance(stmt, ast.Expr):
            self._eval(fi, stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(fi, stmt.value, env)
        elif isinstance(stmt, ast.If):
            verdict = self._truth(self._eval(fi, stmt.test, env))
            if verdict is not False:
                self._body(fi, stmt.body, env)
            if verdict is not True:
                self._body(fi, stmt.orelse, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(fi, stmt, env)
        elif isinstance(stmt, ast.While):
            self._eval(fi, stmt.test, env)
            self._body(fi, stmt.body, env)
            self._body(fi, stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self._eval(fi, item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(fi, item.optional_vars, val, env)
            self._body(fi, stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._body(fi, stmt.body, env)
            for h in stmt.handlers:
                self._body(fi, h.body, env)
            self._body(fi, stmt.orelse, env)
            self._body(fi, stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # local callback: remember the closure environment so
            # ctx.compute(...) can invoke it with witness bounds
            local = fi and self.an.reg.modules.get(fi.module)
            target = None
            if local:
                qual = f"{fi.qualname}.{stmt.name}"
                target = local.functions.get(qual)
            if target is not None:
                env[stmt.name] = FuncVal(target, dict(env))
        # other statements (Raise/Pass/Import/...) carry no accesses

    def _for(self, fi: FuncInfo, stmt, env: dict) -> None:
        it = self._eval(fi, stmt.iter, env)
        # small constant tuples iterate concretely (the add_array_access
        # loop in jacobi/sor); everything else binds the target once
        if (
            isinstance(stmt.iter, (ast.Tuple, ast.List))
            and len(stmt.iter.elts) <= 8
            and all(isinstance(e, ast.Constant) for e in stmt.iter.elts)
        ):
            for elt in stmt.iter.elts:
                self._bind(fi, stmt.target, elt.value, env)
                self._body(fi, stmt.body, env)
            self._body(fi, stmt.orelse, env)
            return
        if isinstance(it, RangeVal):
            if it.stop.hi - 1 < it.start.lo:
                bound = TOP  # statically empty at the witness
            else:
                bound = IV(it.start.lo, it.stop.hi - 1)
        elif isinstance(it, IV):
            bound = it
        else:
            bound = TOP
        self._bind(fi, stmt.target, bound, env)
        self._body(fi, stmt.body, env)
        self._body(fi, stmt.orelse, env)

    def _bind(self, fi: FuncInfo, target, val, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = val
        elif isinstance(target, (ast.Tuple, ast.List)):
            vals = (
                list(val) + [TOP] * len(target.elts)
                if isinstance(val, tuple)
                else [TOP] * len(target.elts)
            )
            for t, v in zip(target.elts, vals):
                self._bind(fi, t, v, env)
        # attribute/subscript targets: no tracked state

    # -- expressions ----------------------------------------------------
    def _truth(self, val) -> Optional[bool]:
        if isinstance(val, bool):
            return val
        return None

    def _eval(self, fi: FuncInfo, node, env: dict):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return node.value
            if isinstance(node.value, int):
                return IV.point(node.value)
            return node.value
        if isinstance(node, ast.Name):
            return env.get(node.id, TOP)
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(fi, e, env) for e in node.elts)
        if isinstance(node, (ast.YieldFrom, ast.Yield, ast.Await)):
            return (
                self._eval(fi, node.value, env)
                if node.value is not None else TOP
            )
        if isinstance(node, ast.NamedExpr):
            val = self._eval(fi, node.value, env)
            self._bind(fi, node.target, val, env)
            return val
        if isinstance(node, ast.IfExp):
            self._eval(fi, node.test, env)
            a = self._eval(fi, node.body, env)
            b = self._eval(fi, node.orelse, env)
            return a if a == b else TOP
        if isinstance(node, ast.BinOp):
            return self._binop(fi, node, env)
        if isinstance(node, ast.UnaryOp):
            val = self._eval(fi, node.operand, env)
            if isinstance(node.op, ast.USub) and isinstance(val, IV):
                return IV(-val.hi, -val.lo)
            if isinstance(node.op, ast.Not):
                t = self._truth(val)
                return TOP if t is None else (not t)
            return TOP
        if isinstance(node, ast.Compare):
            return self._compare(fi, node, env)
        if isinstance(node, ast.BoolOp):
            vals = [self._truth(self._eval(fi, v, env)) for v in node.values]
            if isinstance(node.op, ast.And):
                if any(v is False for v in vals):
                    return False
                return True if all(v is True for v in vals) else TOP
            if any(v is True for v in vals):
                return True
            return False if all(v is False for v in vals) else TOP
        if isinstance(node, ast.Call):
            return self._call(fi, node, env)
        if isinstance(node, ast.Attribute):
            return self._attr(fi, node, env)
        if isinstance(node, ast.Subscript):
            self._eval(fi, node.value, env)
            self._eval(fi, node.slice, env)
            return TOP
        if isinstance(node, (ast.List, ast.Set)):
            return tuple(self._eval(fi, e, env) for e in node.elts)
        if isinstance(node, ast.Dict):
            for k, v in zip(node.keys, node.values):
                if k is not None:
                    self._eval(fi, k, env)
                self._eval(fi, v, env)
            return TOP
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comp(fi, node, env)
        if isinstance(node, ast.Starred):
            return self._eval(fi, node.value, env)
        if isinstance(node, ast.JoinedStr):
            return TOP
        if isinstance(node, ast.Lambda):
            return TOP
        return TOP

    def _comp(self, fi: FuncInfo, node, env: dict):
        inner = dict(env)
        for gen in node.generators:
            it = self._eval(fi, gen.iter, inner)
            if isinstance(it, RangeVal) and it.stop.hi - 1 >= it.start.lo:
                self._bind(fi, gen.target, IV(it.start.lo, it.stop.hi - 1),
                           inner)
            elif isinstance(it, IV):
                self._bind(fi, gen.target, it, inner)
            else:
                self._bind(fi, gen.target, TOP, inner)
            for cond in gen.ifs:
                self._eval(fi, cond, inner)
        if isinstance(node, ast.DictComp):
            self._eval(fi, node.key, inner)
            self._eval(fi, node.value, inner)
        else:
            self._eval(fi, node.elt, inner)
        return TOP

    def _binop(self, fi: FuncInfo, node: ast.BinOp, env: dict):
        a = self._eval(fi, node.left, env)
        b = self._eval(fi, node.right, env)
        if not (isinstance(a, IV) and isinstance(b, IV)):
            return TOP
        if isinstance(node.op, ast.Add):
            return _iv_bin(lambda x, y: x + y, a, b)
        if isinstance(node.op, ast.Sub):
            return _iv_bin(lambda x, y: x - y, a, b)
        if isinstance(node.op, ast.Mult):
            return _iv_bin(lambda x, y: x * y, a, b)
        if isinstance(node.op, ast.FloorDiv) and 0 not in (b.lo, b.hi) and (
            b.lo > 0 or b.hi < 0
        ):
            return _iv_bin(lambda x, y: x // y, a, b)
        if isinstance(node.op, ast.Mod) and b.lo == b.hi and b.lo > 0:
            if a.lo >= 0 and a.hi < b.lo:
                return a
            return IV(0, b.lo - 1)
        return TOP

    def _compare(self, fi: FuncInfo, node: ast.Compare, env: dict):
        left = self._eval(fi, node.left, env)
        result: Optional[bool] = True
        for op, rhs in zip(node.ops, node.comparators):
            right = self._eval(fi, rhs, env)
            verdict = self._cmp_one(op, left, right)
            if verdict is False:
                return False
            if verdict is None:
                result = None
            left = right
        return TOP if result is None else result

    @staticmethod
    def _cmp_one(op, a, b) -> Optional[bool]:
        if isinstance(op, (ast.Is, ast.IsNot)):
            if a is None or b is None:
                if a is None and b is None:
                    return isinstance(op, ast.Is)
                if isinstance(a, (IV, ArrRef, tuple)) or isinstance(
                    b, (IV, ArrRef, tuple)
                ):
                    return isinstance(op, ast.IsNot)
            return None
        if not (isinstance(a, IV) and isinstance(b, IV)):
            return None
        if isinstance(op, ast.Lt):
            return True if a.hi < b.lo else (False if a.lo >= b.hi else None)
        if isinstance(op, ast.LtE):
            return True if a.hi <= b.lo else (False if a.lo > b.hi else None)
        if isinstance(op, ast.Gt):
            return True if a.lo > b.hi else (False if a.hi <= b.lo else None)
        if isinstance(op, ast.GtE):
            return True if a.lo >= b.hi else (False if a.hi < b.lo else None)
        if isinstance(op, ast.Eq):
            if a.lo == a.hi == b.lo == b.hi:
                return True
            return False if (a.hi < b.lo or b.hi < a.lo) else None
        if isinstance(op, ast.NotEq):
            if a.hi < b.lo or b.hi < a.lo:
                return True
            return False if a.lo == a.hi == b.lo == b.hi else None
        return None

    # -- attributes and calls -------------------------------------------
    def _attr(self, fi: FuncInfo, node: ast.Attribute, env: dict):
        base = self._eval(fi, node.value, env)
        if isinstance(base, ArrRef):
            if node.attr == "n_rows":
                return IV.point(WITNESS_ROWS)
            return ("arr_attr", base, node.attr)
        if base is CTX:
            return ("ctx_attr", node.attr)
        return TOP

    def _call(self, fi: FuncInfo, node: ast.Call, env: dict):
        func = self._eval(fi, node.func, env)
        args = [self._eval(fi, a, env) for a in node.args]
        kwargs = {
            kw.arg: self._eval(fi, kw.value, env)
            for kw in node.keywords if kw.arg is not None
        }
        # -- ctx primitives
        if isinstance(func, tuple) and func and func[0] == "ctx_attr":
            return self._ctx_call(fi, node, func[1], args, kwargs, env)
        # -- array methods (the access sites)
        if isinstance(func, tuple) and func and func[0] == "arr_attr":
            _, arr, method = func
            return self._arr_call(fi, node, arr, method, args)
        # -- builtins worth modeling
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "range" and args:
                ivs = [a if isinstance(a, IV) else None for a in args]
                if len(args) == 1 and ivs[0]:
                    return RangeVal(IV.point(0), ivs[0])
                if len(args) >= 2 and ivs[0] and ivs[1] and (
                    len(args) == 2
                    or (isinstance(args[2], IV) and args[2].lo == args[2].hi == 1)
                ):
                    return RangeVal(ivs[0], ivs[1])
                return TOP
            if name in ("max", "min") and args and all(
                isinstance(a, IV) for a in args
            ):
                pick = max if name == "max" else min
                return IV(
                    pick(a.lo for a in args), pick(a.hi for a in args)
                )
            if name in ("int", "abs") and len(args) == 1 and isinstance(
                args[0], IV
            ):
                a = args[0]
                if name == "int":
                    return a
                corners = [abs(a.lo), abs(a.hi)]
                return IV(0 if a.lo <= 0 <= a.hi else min(corners),
                          max(corners))
            if name == "len":
                return TOP
        # -- resolved analyzed functions and stored closures
        target: Optional[FuncVal] = None
        if isinstance(func, FuncVal):
            target = func
        else:
            callee = self.an.reg.resolve_call(node, fi)
            if callee is not None and callee.node is not fi.node:
                target = FuncVal(callee, {})
        if target is not None and self.depth < _MAX_DEPTH:
            return self._invoke(target, node, args, kwargs)
        return TOP

    def _invoke(self, target: FuncVal, node: Optional[ast.Call],
                args: list, kwargs: dict):
        callee = target.fi
        cenv: dict = dict(target.env)
        defaults = callee.node.args.defaults
        params = callee.params
        # defaults evaluate in the closure env (jacobi's src=src, dst=dst)
        for p, d in zip(params[len(params) - len(defaults):], defaults):
            cenv[p] = self._eval(callee, d, target.env or cenv)
        for p in params:
            cenv.setdefault(p, TOP)
        for p, a in zip(params, args):
            cenv[p] = a
        for k, v in kwargs.items():
            if k in params:
                cenv[k] = v
        self.depth += 1
        try:
            self._body(callee, callee.node.body, cenv)
        finally:
            self.depth -= 1
        return TOP

    def _ctx_call(self, fi: FuncInfo, node: ast.Call, method: str,
                  args: list, kwargs: dict, env: dict):
        if method == "my_bounds":
            return (IV.point(WITNESS_S), IV.point(WITNESS_E))
        if method == "participating":
            return True  # ownership is checked on the active path
        if method == "register_dense":
            name = (
                node.args[0].value
                if node.args and isinstance(node.args[0], ast.Constant)
                else f"<array@{node.lineno}>"
            )
            arr = self.arrays.setdefault(name, ArrRef(name))
            return arr
        if method == "add_array_access":
            # positional: (phase, name, mode); offsets by keyword
            name = args[1] if len(args) > 1 else None
            if isinstance(name, str):
                lo = kwargs.get("lo_off", IV.point(0))
                hi = kwargs.get("hi_off", IV.point(0))
                if isinstance(lo, IV) and isinstance(hi, IV):
                    self.declared[name] = (lo.lo, hi.hi)
            return None
        if method == "compute":
            # ctx.compute(phase, work_of, exec_rows): run each function
            # argument with the witness owned bounds (lo=s, hi=e)
            for val in list(args) + list(kwargs.values()):
                if isinstance(val, FuncVal) and self.depth < _MAX_DEPTH:
                    self._invoke(
                        val, None,
                        [IV.point(WITNESS_S), IV.point(WITNESS_E)], {},
                    )
            return TOP
        if method == "nn_neighbors":
            return (TOP, TOP)
        return TOP

    def _arr_call(self, fi: FuncInfo, node: ast.Call, arr: ArrRef,
                  method: str, args: list):
        if method in ("row", "get_row", "set_row") and args:
            self._check(fi, node, arr, args[0])
            return TOP
        if method == "hold" and args:
            rows = args[0]
            items = rows if isinstance(rows, tuple) else (rows,)
            for item in items:
                self._check(fi, node, arr, item)
            return None
        if method == "held_rows":
            # held rows are owned+halo by construction
            allowed = self._allowed(arr)
            if allowed.spans:
                return RangeVal(
                    IV.point(allowed.spans[0][0]),
                    IV.point(allowed.spans[-1][1] + 1),
                )
            return TOP
        return TOP
