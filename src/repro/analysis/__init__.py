"""dynsan — the Dyn-MPI correctness-analysis subsystem.

Three independent layers (see ``docs/ANALYSIS.md``):

* :mod:`repro.analysis.plancheck` — static verification of a
  redistribution plan *before* it executes (Section 4.4 invariants:
  matched sends/receives, row-multiset conservation, ghost coverage,
  send-out-only for removed nodes).
* :mod:`repro.analysis.sanitizer` — opt-in runtime sanitizer hooked
  into the MPI layer and the simulation kernel: unmatched send/recv
  accounting, ANY_SOURCE race warnings, collective-mismatch checks,
  and wait-for-graph deadlock detection that fails fast instead of
  hanging the simulation.
* :mod:`repro.analysis.lint` — project-specific AST lint for the
  failure modes generic linters cannot see (undriven generator
  endpoints, nondeterminism in the deterministic zones, mutable
  dataclass defaults).
* :mod:`repro.analysis.flow` — dynflow, the whole-program
  communication-flow analyzer: CFG-based collective matching,
  rank-divergence detection, and static ownership checking over the
  interprocedural call graph of the applications (DYN5xx codes).

Command line: ``python -m repro.analysis lint src/``,
``python -m repro.analysis plan spec.json``, and
``python -m repro.analysis flow src/repro examples``.

Only the sanitizer is imported eagerly: :mod:`repro.simcluster` wires
it into every cluster, and importing :mod:`plancheck` here would close
an import cycle through :mod:`repro.core`.
"""

from __future__ import annotations

from .sanitizer import CommSanitizer, SanitizerReport, sanitizer_enabled

__all__ = [
    "CommSanitizer",
    "SanitizerReport",
    "sanitizer_enabled",
    "plancheck",
    "lint",
    "flow",
]

_LAZY = ("plancheck", "lint", "flow")


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
