"""dynsan command line.

Usage::

    python -m repro.analysis lint src/ [more paths...] [--json]
    python -m repro.analysis plan spec.json [--quiet]
    python -m repro.analysis flow src/repro examples [--json]
    python -m repro.analysis race src/repro examples [--json]
    python -m repro.analysis perf src/repro examples [--profile trace.json]
    python -m repro.analysis perturb --seeds 1,2,3 [--target removal]

``lint`` walks the given files/trees and prints one line per finding
(``path:line:col: CODE message``), exiting 1 if any remain — the CI
correctness gate.

``flow`` runs dynflow, the whole-program communication-flow analyzer
(collective matching, rank-divergence detection, static ownership
checking — DYN5xx codes; see :mod:`repro.analysis.flow`).

``race`` runs dynrace, the message-race and determinism analyzer
(happens-before wildcard-race detection plus AST determinism rules —
DYN7xx codes; see :mod:`repro.analysis.race`).  ``perturb`` is its
dynamic cross-check: it re-runs a traced scenario under
``DYNMPI_PERTURB`` seeds and byte-compares the exports; by default it
*expects* schedule invariance (exit 0 when every seed reproduces the
unperturbed trace), and with ``--expect-diff`` it expects a race to
show up as a trace diff.

``perf`` runs dynperf, the interprocedural hot-path cost analyzer
(hot-zone inference from the kernel event loop + per-iteration cost
rules — DYN1001–DYN1006 codes; see :mod:`repro.analysis.perf`).
``--profile trace.json`` re-ranks the report by measured per-phase
exclusive time from a dynscope trace export.

Every subcommand follows one exit-code contract, and ``lint``,
``flow``, ``race``, and ``perf`` share the same baseline-file
mechanics (``--baseline`` to carry known findings,
``--write-baseline`` to snapshot them; see
:mod:`repro.analysis.baseline`):

=====  =============================================================
exit   meaning
=====  =============================================================
0      clean — no findings (for ``perturb``: expectation met)
1      findings remain / violations found / expectation not met
2      usage or internal error (unreadable input, malformed spec,
       unreadable ``--profile`` trace, blown ``--max-seconds``
       budget)
=====  =============================================================

``plan`` statically verifies a redistribution plan from a JSON spec::

    {
      "n_rows": 12,
      "old_bounds": [[0, 5], [6, 11]],
      "new_bounds": [[0, 11], null],
      "arrays": {"A": 12},
      "accesses": [
        {"array": "A", "mode": "read", "lo_off": -1, "hi_off": 1},
        {"array": "A", "mode": "write"}
      ],
      "plan": {"1->0": {"A": [6, 7, 8, 9, 10, 11]}}
    }

``new_bounds`` entries of ``null`` mark removed participants.  The
optional ``"plan"`` object gives explicit sends (``"src->dst"`` keys);
without it the verifier derives the plan exactly as the runtime would
and self-checks it.  Exits 1 when violations are found.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .lint import lint_paths


def _bounds(raw: list) -> tuple:
    return tuple(None if b is None else (int(b[0]), int(b[1])) for b in raw)


def _load_plan_spec(spec: dict[str, Any]):
    from ..core.drsd import DRSD
    from .plancheck import RedistPlan, accesses_to_phases

    n_rows = int(spec["n_rows"])
    old_bounds = _bounds(spec["old_bounds"])
    new_bounds = _bounds(spec["new_bounds"])
    arrays = {str(k): int(v) for k, v in spec.get("arrays", {"A": n_rows}).items()}
    accesses = [
        DRSD(
            a["array"], a.get("mode", "readwrite"),
            int(a.get("lo_off", 0)), int(a.get("hi_off", 0)),
            int(a.get("step", 1)),
        )
        for a in spec.get("accesses", [])
    ]
    phases = accesses_to_phases(accesses)
    plan = None
    if "plan" in spec:
        plan = RedistPlan(len(new_bounds))
        for key, entry in spec["plan"].items():
            src, _, dst = key.partition("->")
            for name, rows in entry.items():
                plan.add(int(src), int(dst), name, [int(r) for r in rows])
    return old_bounds, new_bounds, phases, arrays, plan


def _cmd_plan(args: argparse.Namespace) -> int:
    from ..errors import PlanCheckError
    from .plancheck import build_plan, verify_plan

    try:
        with open(args.spec, encoding="utf-8") as fh:
            spec = json.load(fh)
    except OSError as exc:
        print(f"plan: cannot read {args.spec}: {exc.strerror}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"plan: {args.spec} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        old_bounds, new_bounds, phases, arrays, plan = _load_plan_spec(spec)
    except (KeyError, TypeError, ValueError) as exc:
        print(f"plan: malformed spec {args.spec}: {exc!r}", file=sys.stderr)
        return 2
    derived = plan is None
    try:
        if plan is None:
            plan = build_plan(old_bounds, new_bounds, phases, arrays)
        violations = verify_plan(
            plan, old_bounds, new_bounds, phases, arrays, raise_on_error=False
        )
    except PlanCheckError as exc:
        # fatal structural breaches (e.g. rank-count mismatch) raise even
        # with raise_on_error=False; report them like any violation list
        violations = exc.violations
    if violations:
        for v in violations:
            print(v)
        print(f"plan: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        src = "derived" if derived else "supplied"
        print(
            f"plan OK ({src}): {len(plan.sends)} transfer(s), "
            f"{plan.rows_sent()} row(s) moving across "
            f"{len(new_bounds)} rank(s)"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .baseline import load_baseline, save_baseline

    try:
        findings = lint_paths(args.paths)
    except OSError as exc:
        print(f"lint: cannot read {exc.filename}: {exc.strerror}",
              file=sys.stderr)
        return 2
    if args.write_baseline:
        save_baseline(args.write_baseline, findings, tool="dynsan-lint")
    suppressed = 0
    if args.baseline:
        known = load_baseline(args.baseline)
        kept = [f for f in findings if f.fingerprint not in known]
        suppressed = len(findings) - len(kept)
        findings = kept
    if args.json:
        print(json.dumps(
            {
                "tool": "dynsan-lint",
                "count": len(findings),
                "suppressed": suppressed,
                "findings": [
                    {
                        "path": f.path, "line": f.line, "col": f.col,
                        "code": f.code, "message": f.message,
                        "fingerprint": f.fingerprint,
                    }
                    for f in findings
                ],
            },
            indent=2,
            sort_keys=True,
        ))
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(
            f"lint: {len(findings)} finding(s)"
            + (f", {suppressed} baselined" if suppressed else ""),
            file=sys.stderr,
        )
        return 1
    if not args.quiet:
        print("lint: clean"
              + (f" ({suppressed} baselined)" if suppressed else ""))
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from .flow import run_flow

    return run_flow(
        args.paths,
        json_out=args.json,
        quiet=args.quiet,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        max_seconds=args.max_seconds,
    )


def _cmd_race(args: argparse.Namespace) -> int:
    from .race import run_race

    return run_race(
        args.paths,
        json_out=args.json,
        quiet=args.quiet,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        max_seconds=args.max_seconds,
    )


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf import run_perf

    return run_perf(
        args.paths,
        json_out=args.json,
        quiet=args.quiet,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        max_seconds=args.max_seconds,
        profile=args.profile,
    )


def _cmd_perturb(args: argparse.Namespace) -> int:
    from .race import run_perturbed

    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        print(f"perturb: --seeds must be comma-separated integers, "
              f"got {args.seeds!r}", file=sys.stderr)
        return 2
    if not seeds:
        print("perturb: --seeds is empty", file=sys.stderr)
        return 2
    try:
        report = run_perturbed(args.target, seeds)
    except Exception as exc:
        print(f"perturb: internal error: {exc!r}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    met = report.invariant != args.expect_diff
    return 0 if met else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="dynsan: Dyn-MPI communication-correctness analyzers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lint = sub.add_parser("lint", help="project-specific AST lint")
    p_lint.add_argument("paths", nargs="+", help="files or directories")
    p_lint.add_argument("--quiet", action="store_true")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_lint.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings whose fingerprint is in FILE")
    p_lint.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and continue")
    p_lint.set_defaults(fn=_cmd_lint)

    p_plan = sub.add_parser("plan", help="verify a redistribution plan")
    p_plan.add_argument("spec", help="JSON plan spec (see module docstring)")
    p_plan.add_argument("--quiet", action="store_true")
    p_plan.set_defaults(fn=_cmd_plan)

    p_flow = sub.add_parser(
        "flow", help="dynflow whole-program communication-flow analysis"
    )
    p_flow.add_argument("paths", nargs="+", help="files or directories")
    p_flow.add_argument("--quiet", action="store_true")
    p_flow.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_flow.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings whose fingerprint is in FILE")
    p_flow.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and continue")
    p_flow.add_argument("--max-seconds", type=float, default=None,
                        help="fail (exit 2) if analysis exceeds this budget")
    p_flow.set_defaults(fn=_cmd_flow)

    p_race = sub.add_parser(
        "race", help="dynrace message-race and determinism analysis"
    )
    p_race.add_argument("paths", nargs="+", help="files or directories")
    p_race.add_argument("--quiet", action="store_true")
    p_race.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_race.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings whose fingerprint is in FILE")
    p_race.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and continue")
    p_race.add_argument("--max-seconds", type=float, default=None,
                        help="fail (exit 2) if analysis exceeds this budget")
    p_race.set_defaults(fn=_cmd_race)

    p_perf = sub.add_parser(
        "perf", help="dynperf interprocedural hot-path cost analysis"
    )
    p_perf.add_argument("paths", nargs="+", help="files or directories")
    p_perf.add_argument("--quiet", action="store_true")
    p_perf.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_perf.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings whose fingerprint is in FILE")
    p_perf.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and continue")
    p_perf.add_argument("--max-seconds", type=float, default=None,
                        help="fail (exit 2) if analysis exceeds this budget")
    p_perf.add_argument("--profile", metavar="TRACE", default=None,
                        help="dynscope trace export: re-rank findings by "
                             "measured per-phase exclusive time")
    p_perf.set_defaults(fn=_cmd_perf)

    p_pert = sub.add_parser(
        "perturb", help="schedule-perturbation determinism cross-check"
    )
    p_pert.add_argument("--target", default="removal",
                        help="'removal' (canonical scenario) or a path to a "
                             "Python file defining run_traced() -> str")
    p_pert.add_argument("--seeds", default="1,2,3",
                        help="comma-separated DYNMPI_PERTURB seeds")
    p_pert.add_argument("--expect-diff", action="store_true",
                        help="invert the expectation: exit 0 only if some "
                             "seed changes the trace (race demonstration)")
    p_pert.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    p_pert.set_defaults(fn=_cmd_perturb)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
