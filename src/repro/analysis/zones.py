"""Path-zone registry shared by every analyzer family.

Each rule family in the suite applies only inside a *zone* — a set of
files picked out by path components — and several families exempt a
sanctioned *home* (the one module allowed to do the thing the rule
bans).  Until dynperf this logic was re-implemented per rule family in
:mod:`repro.analysis.lint`; this module is the one place a zone is
defined, and dynsan, dynrace, and dynperf all resolve paths through it.

A :class:`Zone` is declarative:

* ``require_parts`` — the path must contain at least one of these
  components (empty = no requirement);
* ``forbid_parts`` — the path must contain none of these;
* ``exempt_files`` — file names excluded from the zone;
* ``home_dir``/``home_prefix`` — the sanctioned home: files named
  ``{home_prefix}*`` under a ``{home_dir}`` component are *outside*
  the zone (they are the module the rule protects).

Every zone names the subsystem that owns it and the suppression
marker that waives one of its findings — so an exemption comment
always names the tool whose rule it silences (``# dynsan: ok``,
``# dynrace: ok``, ``# dyncamp: ok``, ``# dynkern: ok``,
``# dynperf: ok``, ``# dynfarm: ok``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

__all__ = ["Zone", "ZONES", "suppress_mark_for"]


@dataclass(frozen=True)
class Zone:
    name: str
    owner: str             # subsystem the rule family belongs to
    suppress_mark: str     # marker that waives a finding in this zone
    require_parts: tuple = ()
    forbid_parts: tuple = ()
    exempt_files: tuple = ()
    home_dir: str = ""
    home_prefix: str = ""

    def is_home(self, path: pathlib.Path) -> bool:
        """Whether ``path`` is the zone's sanctioned home module."""
        if not self.home_dir:
            return False
        return (self.home_dir in path.parts
                and path.name.startswith(self.home_prefix))

    def contains(self, path: pathlib.Path) -> bool:
        parts = path.parts
        if self.require_parts and not any(
            p in parts for p in self.require_parts
        ):
            return False
        if any(p in parts for p in self.forbid_parts):
            return False
        if path.name in self.exempt_files:
            return False
        return not self.is_home(path)


#: the registry: one entry per rule family's zone.  The lint module's
#: historical per-rule constants (DETERMINISTIC_ZONES, PROCESS_ZONE,
#: KERNEL_HOME_PREFIX, ...) are re-derived from these entries so the
#: two views can never drift.
ZONES: dict[str, Zone] = {
    # DYN101: wallclock/randomness is banned where bit-exactness lives
    "deterministic": Zone(
        name="deterministic", owner="dynsan", suppress_mark="dynsan: ok",
        require_parts=("simcluster", "core"),
    ),
    # DYN301: library code must route faults through the FailureBoard;
    # the resilience package is the sanctioned home
    "fault": Zone(
        name="fault", owner="dynsan", suppress_mark="dynsan: ok",
        require_parts=("repro",), forbid_parts=("resilience",),
    ),
    # DYN401: per-row membership loops on the data-plane hot paths;
    # the set-based oracle keeps the original code as ground truth
    "row_membership": Zone(
        name="row_membership", owner="dynsan", suppress_mark="dynsan: ok",
        require_parts=("core", "resilience"),
        exempt_files=("reference.py",),
    ),
    # DYN601: ad-hoc instrumentation outside the sanctioned homes
    # (sysmon/obs) and the analyzer drivers whose wall-clock budgets
    # and stdout reports are the feature
    "instrumentation": Zone(
        name="instrumentation", owner="dynsan", suppress_mark="dynsan: ok",
        require_parts=("repro",),
        forbid_parts=("sysmon", "obs", "flow", "race", "perf"),
        exempt_files=("__main__.py", "report.py"),
    ),
    # DYN801: process-level parallelism belongs to the campaign layer
    "process": Zone(
        name="process", owner="dyncamp", suppress_mark="dyncamp: ok",
        require_parts=("repro",), forbid_parts=("campaign",),
    ),
    # DYN901: the event queue's invariants belong to the kernel
    # modules (kernel*.py covers the reference engine too)
    "kernel": Zone(
        name="kernel", owner="dynkern", suppress_mark="dynkern: ok",
        require_parts=("repro",),
        home_dir="simcluster", home_prefix="kernel",
    ),
    # DYN704: the one sanctioned RNG construction site.  Used through
    # ``is_home`` — the *home* is what dynrace needs to recognize.
    "rng": Zone(
        name="rng", owner="dynrace", suppress_mark="dynrace: ok",
        require_parts=("repro",),
        home_dir="simcluster", home_prefix="rng.py",
    ),
    # DYN1101: the farm wire protocol (reserved tag band 210-219) and
    # one-sided Window construction belong to repro.farm / repro.mpi.rma
    "farm": Zone(
        name="farm", owner="dynfarm", suppress_mark="dynfarm: ok",
        require_parts=("repro",), forbid_parts=("farm",),
        home_dir="mpi", home_prefix="rma",
    ),
    # DYN1001-1006: dynperf's cost rules run over every analyzed path;
    # the hot *zone* itself is function-level (call-graph reachability,
    # repro.analysis.perf.hotzone), not path-level, so this entry only
    # carries the family's ownership and suppression marker
    "perf": Zone(
        name="perf", owner="dynperf", suppress_mark="dynperf: ok",
    ),
}


#: finding-code family -> the zone owning that rule family; used to
#: pick the suppression marker a finding listens to.  Families are
#: matched by the code's *hundreds* group (``DYN801`` -> 8xx), except
#: dynperf whose four-digit DYN10xx block would otherwise collide
#: with DYN1xx.
_FAMILY_ZONES = {
    "7": ZONES["rng"],       # DYN7xx: dynrace determinism rules
    "8": ZONES["process"],   # DYN8xx: dyncamp process-parallelism rule
    "9": ZONES["kernel"],    # DYN9xx: dynkern event-queue rule
}


def suppress_mark_for(code: str) -> str:
    """The suppression marker a finding code listens to (``DYN801``
    -> ``dyncamp: ok``, ``DYN1003`` -> ``dynperf: ok``, default
    ``dynsan: ok``)."""
    digits = code.removeprefix("DYN")
    if len(digits) == 4 and digits.startswith("10"):
        return ZONES["perf"].suppress_mark
    if len(digits) == 4 and digits.startswith("11"):
        return ZONES["farm"].suppress_mark
    if len(digits) == 3 and digits[0] in _FAMILY_ZONES:
        return _FAMILY_ZONES[digits[0]].suppress_mark
    return "dynsan: ok"
