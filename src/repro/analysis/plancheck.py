"""Static redistribution-plan verifier (the plancheck layer of dynsan).

Dyn-MPI's redistribution (paper Section 4.4) relies on every rank
deriving the *same* plan from the same inputs — old distribution, new
distribution, DRSDs — with no negotiation round.  A derivation bug
therefore corrupts data silently: ``arr.hold`` zero-fills any row
nobody sent, so a lost row becomes wrong numerics a thousand cycles
later, not a crash now.  This module makes the plan explicit and
checks the Section 4.4 invariants *before* any message moves:

* **matched transfers** — every row a rank must newly hold arrives
  from exactly one sender, and that sender is the row's unique *old
  owner* (ghost copies are stale and must never be the source);
* **row-multiset conservation** — no lost rows (needed but never
  sent), no duplicated rows (two senders for one row), no phantom rows
  (sent but not needed by the destination);
* **ghost coverage** — the needed sets cover every row each DRSD read
  access touches under the new loop bounds;
* **removal semantics** — a participant with no new bounds gets
  send-out but no send-in.

:func:`build_plan` reproduces exactly the send rule
:func:`repro.core.redistribute.redistribute` executes (via the same
:func:`~repro.core.redistribute.needed_map`), so verifying a built
plan checks the runtime's own derivation; :func:`verify_plan` also
accepts an externally supplied (possibly corrupt) plan, which is how
the tests seed dropped/duplicated/phantom rows.

Exposed on the command line as ``python -m repro.analysis plan
spec.json`` (see :mod:`repro.analysis.__main__` for the spec format).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.drsd import DRSD
from ..core.intervals import IntervalSet
from ..core.redistribute import Bounds, needed_map, owned_intervals, plan_sends
from ..errors import PlanCheckError

__all__ = [
    "PlanViolation",
    "RedistPlan",
    "accesses_to_phases",
    "build_plan",
    "verify_plan",
    "verify_transition",
]


@dataclass(frozen=True)
class PlanViolation:
    """One invariant breach found in a redistribution plan."""

    code: str      # lost-row | duplicate-row | phantom-row | unowned-send
    #                | send-to-removed | ghost-gap | self-send | bad-rank
    array: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.array}: {self.message}"


@dataclass
class RedistPlan:
    """An explicit redistribution plan over a group of ``n`` relative
    ranks: ``sends[(src, dst)][array]`` is the sorted tuple of global
    rows ``src`` packs for ``dst``.  Empty transfers are omitted."""

    n: int
    sends: dict = field(default_factory=dict)

    def add(self, src: int, dst: int, array: str, rows: Sequence[int]) -> None:
        rows = tuple(sorted(rows))
        if rows:
            self.sends.setdefault((src, dst), {})[array] = rows

    def rows_sent(self) -> int:
        return sum(
            len(rows) for entry in self.sends.values() for rows in entry.values()
        )

    def incoming(self, dst: int, array: str) -> list[tuple[int, tuple]]:
        """[(src, rows), ...] addressed to ``dst`` for ``array``."""
        return [
            (s, entry[array])
            for (s, d), entry in sorted(self.sends.items())
            if d == dst and array in entry
        ]


class _AccessPhase:
    """Duck-typed stand-in for :class:`repro.core.phase.Phase` carrying
    only what :func:`needed_map` reads (``phase_id``, ``accesses``), so
    the verifier can run from bare DRSD lists (CLI, tests) without a
    communication-pattern model."""

    __slots__ = ("phase_id", "accesses")

    def __init__(self, phase_id: int, accesses: Sequence[DRSD]):
        self.phase_id = phase_id
        self.accesses = list(accesses)


def accesses_to_phases(accesses: Sequence[DRSD]) -> Mapping[int, _AccessPhase]:
    """Wrap a flat DRSD list as the one-phase mapping ``needed_map``
    expects."""
    return {0: _AccessPhase(0, accesses)}


def build_plan(
    old_bounds: Bounds,
    new_bounds: Bounds,
    phases: Mapping[int, object],
    array_rows: Mapping[str, int],
) -> RedistPlan:
    """Derive the plan :func:`~repro.core.redistribute.redistribute`
    would execute: ``src`` sends ``dst`` the rows ``dst`` needs under
    the new bounds, did not own before, and ``src`` did own before.
    Derivation is pure interval algebra
    (:func:`~repro.core.redistribute.plan_sends`); only the explicit
    plan object expands transfers to row tuples."""
    n = len(new_bounds)
    needed = needed_map(phases, new_bounds, array_rows)
    plan = RedistPlan(n)
    for (src, dst), entry in plan_sends(old_bounds, needed,
                                        list(array_rows)).items():
        for name, rows in entry.items():
            plan.add(src, dst, name, rows)
    return plan


def verify_plan(
    plan: RedistPlan,
    old_bounds: Bounds,
    new_bounds: Bounds,
    phases: Mapping[int, object],
    array_rows: Mapping[str, int],
    *,
    raise_on_error: bool = True,
) -> list[PlanViolation]:
    """Check ``plan`` against the Section 4.4 invariants.

    Returns the violation list (empty when the plan is sound); with
    ``raise_on_error`` a non-empty list raises
    :class:`~repro.errors.PlanCheckError` instead.
    """
    n = len(new_bounds)
    if len(old_bounds) != n or plan.n != n:
        raise PlanCheckError([PlanViolation(
            "bad-rank", "*",
            f"plan covers {plan.n} ranks but bounds cover "
            f"{len(old_bounds)} (old) / {n} (new)",
        )])
    needed = needed_map(phases, new_bounds, array_rows)
    violations: list[PlanViolation] = []

    # -- sender-side checks on every declared transfer ------------------
    for (src, dst), entry in sorted(plan.sends.items()):
        if not (0 <= src < n and 0 <= dst < n):
            violations.append(PlanViolation(
                "bad-rank", "*", f"transfer {src}->{dst} outside group of {n}"
            ))
            continue
        if src == dst:
            violations.append(PlanViolation(
                "self-send", "*", f"rank {src} schedules a message to itself"
            ))
            continue
        src_old = owned_intervals(old_bounds, src)
        dst_old = owned_intervals(old_bounds, dst)
        for name, rows in sorted(entry.items()):
            if name not in array_rows:
                violations.append(PlanViolation(
                    "bad-rank", name, f"transfer {src}->{dst} names an "
                    f"unregistered array"
                ))
                continue
            rows_ivl = IntervalSet.from_rows(rows)
            unowned = rows_ivl - src_old
            if unowned:
                violations.append(PlanViolation(
                    "unowned-send", name,
                    f"rank {src} sends rows {unowned.to_rows()} to {dst} "
                    f"but did not own them under the old distribution "
                    f"(stale ghost copies must never be the source)",
                ))
            if new_bounds[dst] is None and not needed[dst][name]:
                violations.append(PlanViolation(
                    "send-to-removed", name,
                    f"rank {dst} is removed (no new bounds) yet rank {src} "
                    f"sends it rows {rows_ivl.to_rows()[:8]} — removed "
                    f"nodes get send-out, never send-in",
                ))
                continue
            phantom = rows_ivl - needed[dst][name]
            if phantom:
                violations.append(PlanViolation(
                    "phantom-row", name,
                    f"rank {src} sends rows {phantom.to_rows()} to {dst}, "
                    f"which needs none of them under the new bounds",
                ))
            already = rows_ivl & dst_old
            if already:
                violations.append(PlanViolation(
                    "phantom-row", name,
                    f"rank {src} re-sends rows {already.to_rows()} that "
                    f"{dst} already owns authoritatively",
                ))

    # -- receiver-side coverage: every newly needed row arrives once ----
    for dst in range(n):
        dst_old = owned_intervals(old_bounds, dst)
        for name, n_rows in array_rows.items():
            must_arrive = needed[dst][name] - dst_old
            # the transfer list differs per (dst, array), nothing to
            # hoist; verification runs per redistribution  # dynperf: ok
            incoming = [
                (src, IntervalSet.from_rows(rows))
                for src, rows in plan.incoming(dst, name)
            ]
            seen = IntervalSet.empty()
            dup = IntervalSet.empty()
            for _src, rows_ivl in incoming:
                dup = dup | (seen & rows_ivl)
                seen = seen | rows_ivl
            lost = must_arrive - seen
            if lost:
                violations.append(PlanViolation(
                    "lost-row", name,
                    f"rank {dst} needs rows {lost.to_rows()} under the new "
                    f"bounds but no rank sends them (hold() would silently "
                    f"zero-fill)",
                ))
            # sender lookup only for the (rare) duplicated rows
            for r in dup:
                senders = sorted(
                    src for src, rows_ivl in incoming if r in rows_ivl
                )
                violations.append(PlanViolation(
                    "duplicate-row", name,
                    # violation message: only built for duplicated
                    # rows, which a correct plan never has  # dynperf: ok
                    f"row {r} arrives at rank {dst} from multiple senders "
                    f"{senders}",
                ))

    # -- ghost coverage: needed sets reach every DRSD read access -------
    for rel in range(n):
        b = new_bounds[rel]
        if b is None:
            continue
        s, e = b
        for phase in phases.values():
            for acc in phase.accesses:
                if not acc.reads:
                    continue
                touched = acc.needed_intervals(s, e, array_rows[acc.array])
                gap = touched - needed[rel][acc.array]
                if gap:
                    violations.append(PlanViolation(
                        "ghost-gap", acc.array,
                        f"rank {rel} reads rows {gap.to_rows()} (DRSD "
                        f"offsets [{acc.lo_off},{acc.hi_off}]) but its "
                        f"needed set omits them",
                    ))

    if violations and raise_on_error:
        raise PlanCheckError(violations)
    return violations


def verify_transition(
    old_bounds: Bounds,
    new_bounds: Bounds,
    phases: Mapping[int, object],
    array_rows: Mapping[str, int],
    *,
    raise_on_error: bool = True,
) -> tuple[RedistPlan, list[PlanViolation]]:
    """Build the runtime's own plan for a distribution change and
    verify it — the self-check :class:`~repro.core.runtime.DynMPI`
    runs before every redistribution when the sanitizer is enabled."""
    plan = build_plan(old_bounds, new_bounds, phases, array_rows)
    violations = verify_plan(
        plan, old_bounds, new_bounds, phases, array_rows,
        raise_on_error=raise_on_error,
    )
    return plan, violations
