"""Project-specific AST lint (the lint layer of dynsan).

Generic linters cannot know that this codebase's endpoint operations
are *generators*: ``ep.send(...)`` as a bare statement builds a
generator object, drops it, and silently sends nothing.  Nor can they
know that :mod:`repro.simcluster` and :mod:`repro.core` must stay
bit-for-bit deterministic (wallclock or unseeded randomness there
breaks reproducibility and the redistribution lockstep).  These checks
are encoded here:

=======  ==========================================================
code     meaning
=======  ==========================================================
DYN001   generator endpoint/collective call used as a bare statement
         (silent no-op — drive it with ``yield from``)
DYN002   ``yield gen_call(...)`` where ``yield from`` is required
         (yields the generator object as a bogus syscall)
DYN101   wallclock/randomness in a deterministic zone
         (``simcluster``/``core``): ``time.time``-family calls,
         the ``random`` module, unseeded or convenience
         ``numpy.random`` entry points
DYN201   mutable default on a dataclass field (shared-state bug;
         includes numpy-array defaults the stdlib check misses)
DYN301   bare ``Simulator.kill(...)``/``inject(...)`` in library code
         outside :mod:`repro.resilience` — ad-hoc fault injection
         bypasses the FailureBoard and the runtime's crash
         accounting; route faults through a ``FailureScript``
DYN401   per-row row-membership construction in a data-plane hot
         path (``core``/``resilience``): ``set(range(lo, hi))`` or a
         list/set comprehension filtering ``range(lo, hi)`` builds
         O(rows) Python objects where interval algebra
         (:class:`repro.core.intervals.IntervalSet`) is O(spans);
         the set-based reference oracle (``core/reference.py``) is
         exempt
DYN601   ad-hoc instrumentation in library code (under ``repro``):
         raw ``time.time``-family reads or bare ``print(...)`` —
         measure with the :mod:`repro.sysmon` timers and report
         through :mod:`repro.obs` (dynscope) instead.  The two
         instrumentation homes (``sysmon/``, ``obs/``), the dynflow
         driver (``flow/``), CLI entry points (``__main__.py``) and
         report formatters (``report.py``) are exempt; inside
         deterministic zones the time-family check defers to DYN101
DYN801   process-level parallelism in library code (under ``repro``)
         outside :mod:`repro.campaign`: importing
         ``multiprocessing``, ``concurrent.futures`` or
         ``subprocess`` — the simulator's determinism story depends
         on it staying single-process; fan out at the campaign
         layer (dyncamp), which journals and aggregates
         deterministically.  Suppressed with ``# dyncamp: ok``
         (not ``# dynsan: ok``) so an exemption names the
         subsystem that owns the rule
DYN901   event-queue manipulation in library code (under ``repro``)
         outside the kernel modules (``simcluster/kernel*.py``):
         importing ``heapq`` or touching a simulator's ``._heap``.
         The dynkern engine owns the event queue's invariants — the
         two-lane ready/heap split, the ``(time, seq)`` total order
         and tombstone accounting — and out-of-band pushes or pops
         silently corrupt them; go through ``schedule`` /
         ``call_soon`` / ``Timer.cancel``.  Suppressed with
         ``# dynkern: ok`` (not ``# dynsan: ok``) so an exemption
         names the subsystem that owns the rule
DYN1101  farm-protocol access in library code (under ``repro``)
         outside the farm runtime (``farm/``) and the one-sided home
         (``mpi/rma*.py``): constructing an RMA ``Window(...)`` ad
         hoc, or passing a raw integer literal from the reserved
         farm tag band ``[210, 220)`` to an endpoint send/recv —
         application code splicing into the master/worker
         conversation corrupts the dispatch protocol; go through
         ``repro.farm`` (and its named ``TAG_*`` constants) or
         ``repro.mpi.rma.Window``.  Suppressed with ``# dynfarm: ok``
         so an exemption names the subsystem that owns the rule
=======  ==========================================================

Suppress a finding by putting ``# dynsan: ok`` on the offending line.
Run as ``python -m repro.analysis lint <paths...>``; exits non-zero
when findings remain, which is the CI gate.

This module also hosts dynrace's determinism AST rules — they run
under the ``race`` subcommand (:mod:`repro.analysis.race`), not the
plain lint gate, and are suppressed with ``# dynrace: ok`` instead:

=======  ==========================================================
code     meaning
=======  ==========================================================
DYN703   iteration over an unordered ``set``/``frozenset`` whose
         body emits messages or trace events — emission *order*
         then depends on hash seeding, not the program
DYN704   RNG outside the sanctioned home
         (``simcluster/rng.py``'s seeded StreamRegistry): the
         ``random`` module, any ``numpy.random`` draw, or
         constructing generators ad hoc — even seeded ones
         fragment the reproducibility story
DYN705   float accumulation (``+=`` / ``sum(...)``) over set
         iteration — floating-point addition does not commute
         with reordering, so the result varies run to run
=======  ==========================================================
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .zones import ZONES, suppress_mark_for

__all__ = [
    "LintFinding",
    "lint_source", "lint_file", "lint_paths",
    "race_lint_source", "race_lint_file", "race_lint_paths",
]

#: endpoint/runtime methods that return generators and must be driven
GENERATOR_METHODS = frozenset({
    "send", "recv", "sendrecv", "wait",
    "send_rel", "recv_rel", "sendrecv_rel",
    "allreduce_active", "allgather_active", "bcast_active", "global_reduce",
    "begin_cycle", "end_cycle", "compute",
})

#: module-level generator functions (collectives, redistribution)
GENERATOR_FUNCS = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
    "allgather", "allgather_dissemination", "alltoallv", "redistribute",
})

#: zone definitions live in the shared registry (repro.analysis.zones)
#: — one declarative entry per rule family, consumed by dynsan,
#: dynrace, and dynperf alike.  The historical constants below are
#: derived views kept for readability at the use sites.
DETERMINISTIC_ZONES = ZONES["deterministic"].require_parts

#: Simulator methods that constitute fault injection (DYN301; the
#: resilience package is the zone's sanctioned home)
_FAULT_METHODS = frozenset({"kill", "inject"})

#: top-level modules whose import constitutes process-level parallelism
#: (``concurrent`` covers ``concurrent.futures``) — DYN801; the
#: campaign engine is the zone's sanctioned home
_PROCESS_MODULES = frozenset({"multiprocessing", "concurrent", "subprocess"})

#: suppression marker for DYN801 — the rule belongs to dyncamp, so an
#: exemption is spelled ``# dyncamp: ok``
CAMPAIGN_SUPPRESS_MARK = ZONES["process"].suppress_mark

#: suppression marker for DYN901 — the rule belongs to dynkern
KERNEL_SUPPRESS_MARK = ZONES["kernel"].suppress_mark

#: suppression marker for DYN1101 — the rule belongs to dynfarm
FARM_SUPPRESS_MARK = ZONES["farm"].suppress_mark

#: the reserved farm wire-protocol tag band (repro.farm.protocol)
_FARM_TAG_LO, _FARM_TAG_HI = 210, 220

#: endpoint operations whose tag argument DYN1101 inspects
_FARM_TAG_SINKS = frozenset({
    "send", "recv", "isend", "irecv", "sendrecv", "iprobe", "probe",
    "send_rel", "recv_rel", "sendrecv_rel",
})

#: the event-queue attribute DYN901 guards against out-of-band access
_KERNEL_HEAP_ATTR = "_heap"

#: wallclock reads DYN601 flags in library code (DYN101's time-family
#: subset; entropy stays DYN101-only — it is a determinism bug, not an
#: instrumentation one)
_OBS_TIME_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
})

#: wallclock / entropy calls banned inside deterministic zones
_BANNED_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "uuid.uuid4",
})

#: numpy.random attributes that are fine with an explicit seed argument
_NP_RANDOM_ALLOWED = frozenset({"default_rng", "SeedSequence", "Generator",
                                "PCG64", "Philox", "BitGenerator"})

_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})
_NP_ARRAY_CTORS = frozenset({"zeros", "ones", "empty", "full", "array",
                             "arange", "eye"})


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def fingerprint(self) -> str:
        """Stable id for baseline files (repro.analysis.baseline):
        excludes the line number so a baseline entry survives
        unrelated edits to the same file."""
        raw = f"{self.code}|{self.path}|{self.message}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source: str, *, deterministic_zone: bool,
                 fault_injection_zone: bool = False,
                 row_membership_zone: bool = False,
                 instrumentation_zone: bool = False,
                 process_zone: bool = False,
                 kernel_zone: bool = False,
                 farm_zone: bool = False):
        self.path = path
        self.lines = source.splitlines()
        self.zone = deterministic_zone
        self.fault_zone = fault_injection_zone
        self.row_zone = row_membership_zone
        self.inst_zone = instrumentation_zone
        self.process_zone = process_zone
        self.kernel_zone = kernel_zone
        self.farm_zone = farm_zone
        self.findings: list[LintFinding] = []
        #: local alias -> real module name (import numpy as np)
        self.aliases: dict[str, str] = {}
        #: names imported *from* banned modules (from random import choice)
        self.from_random: set[str] = set()
        #: local name -> dotted origin for ``from time import ...``
        #: (so DYN601 sees through ``from time import time as wallclock``)
        self.from_time: dict[str, str] = {}

    # -- helpers --------------------------------------------------------
    def _suppressed(self, node: ast.AST, mark: str = "dynsan: ok") -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return mark in self.lines[line - 1]
        return False

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        mark = suppress_mark_for(code)
        if not self._suppressed(node, mark):
            self.findings.append(LintFinding(
                self.path, node.lineno, node.col_offset, code, message
            ))

    def _check_process_import(self, node: ast.AST, module: str) -> None:
        if self.process_zone and module.split(".")[0] in _PROCESS_MODULES:
            self._emit(node, "DYN801",
                       f"`{module}` brings process-level parallelism into "
                       f"library code; the simulator must stay "
                       f"single-process — fan out at the campaign layer "
                       f"(repro.campaign) instead")

    def _check_kernel_import(self, node: ast.AST, module: str) -> None:
        if self.kernel_zone and module.split(".")[0] == "heapq":
            self._emit(node, "DYN901",
                       f"`{module}` manipulates an event queue outside the "
                       f"kernel (simcluster/kernel*.py), which owns the "
                       f"(time, seq) order and tombstone accounting; "
                       f"schedule through the Simulator API instead")

    def _resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite the leading alias of a dotted path to its module."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        real = self.aliases.get(head, head)
        return f"{real}.{rest}" if rest else real

    def _is_generator_call(self, node: ast.AST) -> Optional[str]:
        """Return a short description if ``node`` calls a known
        generator endpoint/collective, else None."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in GENERATOR_METHODS:
            base = _dotted_name(func.value)
            return f"{base or '<expr>'}.{func.attr}(...)"
        if isinstance(func, ast.Name) and func.id in GENERATOR_FUNCS:
            return f"{func.id}(...)"
        return None

    # -- imports (alias tracking + DYN101 on the import itself) ---------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name.split(".")[0]
            self._check_process_import(node, alias.name)
            self._check_kernel_import(node, alias.name)
            if self.zone and alias.name.split(".")[0] == "random":
                self._emit(node, "DYN101",
                           "the `random` module is nondeterministic state "
                           "shared across the process; use the cluster's "
                           "seeded StreamRegistry instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self._check_process_import(node, node.module)
            self._check_kernel_import(node, node.module)
        if self.zone and node.module and node.module.split(".")[0] == "random":
            self._emit(node, "DYN101",
                       "importing from `random` breaks determinism; use the "
                       "cluster's seeded StreamRegistry instead")
            self.from_random.update(a.asname or a.name for a in node.names)
        if node.module == "time":
            for a in node.names:
                self.from_time[a.asname or a.name] = f"time.{a.name}"
        self.generic_visit(node)

    # -- DYN001: bare generator statement -------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        desc = self._is_generator_call(node.value)
        if desc is not None:
            self._emit(node, "DYN001",
                       f"{desc} returns a generator that was dropped — this "
                       f"sends/receives nothing; drive it with `yield from`")
        self.generic_visit(node)

    # -- DYN002: yield instead of yield from ----------------------------
    def visit_Yield(self, node: ast.Yield) -> None:
        desc = self._is_generator_call(node.value) if node.value else None
        if desc is not None:
            self._emit(node, "DYN002",
                       f"`yield {desc}` hands the kernel a generator object "
                       f"instead of driving it; use `yield from`")
        self.generic_visit(node)

    # -- DYN901: out-of-band event-queue access -------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.kernel_zone and node.attr == _KERNEL_HEAP_ATTR:
            base = _dotted_name(node.value)
            self._emit(node, "DYN901",
                       f"`{base or '<expr>'}.{_KERNEL_HEAP_ATTR}` reaches "
                       f"into the kernel's event queue from outside "
                       f"simcluster/kernel*.py; out-of-band pushes/pops "
                       f"corrupt the two-lane invariants — use schedule/"
                       f"call_soon/Timer.cancel")
        self.generic_visit(node)

    # -- DYN401: per-row row-membership construction --------------------
    @staticmethod
    def _is_row_range(node: ast.AST) -> bool:
        """A ``range(lo, hi)``/``range(lo, hi, step)`` call — the shape
        of a *row* loop.  Single-argument ``range(n)`` is rank-space
        iteration (group sizes, not row counts) and stays allowed."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
            and len(node.args) >= 2
        )

    def _check_row_comprehension(self, node) -> None:
        """list/set comprehensions that *filter* a row range build and
        test one Python object per row."""
        if not self.row_zone:
            return
        for gen in node.generators:
            if gen.ifs and self._is_row_range(gen.iter):
                kind = "set" if isinstance(node, ast.SetComp) else "list"
                self._emit(node, "DYN401",
                           f"per-row {kind} comprehension filters a row "
                           f"range element by element; clip or subtract "
                           f"with IntervalSet (repro.core.intervals) "
                           f"instead — O(spans), not O(rows)")
                return

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_row_comprehension(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_row_comprehension(node)
        self.generic_visit(node)

    # -- DYN101 / DYN301 / DYN401 / DYN601: calls -----------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.inst_zone:
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                self._emit(node, "DYN601",
                           "bare `print(...)` in library code; record a "
                           "dynscope span/metric (repro.obs) or return the "
                           "text to the caller")
            elif not self.zone:
                # inside deterministic zones DYN101 already flags these
                dotted = self._resolve(_dotted_name(node.func))
                if isinstance(node.func, ast.Name):
                    dotted = self.from_time.get(node.func.id, dotted)
                if dotted in _OBS_TIME_CALLS:
                    self._emit(node, "DYN601",
                               f"`{dotted}()` is ad-hoc wallclock timing; "
                               f"use the repro.sysmon timers (HrTimer/"
                               f"ProcClock) or a dynscope span (repro.obs)")
        if self.row_zone:
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
                and len(node.args) == 1
                and self._is_row_range(node.args[0])
            ):
                self._emit(node, "DYN401",
                           f"`{node.func.id}(range(lo, hi))` materializes "
                           f"one hash-set entry per row in a data-plane hot "
                           f"path; use IntervalSet.span "
                           f"(repro.core.intervals) — O(1), not O(rows)")
        if self.farm_zone:
            self._check_farm_call(node)
        if self.fault_zone:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _FAULT_METHODS:
                base = _dotted_name(func.value)
                self._emit(node, "DYN301",
                           f"bare `{base or '<expr>'}.{func.attr}(...)` "
                           f"injects a fault behind the FailureBoard's back; "
                           f"use a FailureScript (repro.resilience) so the "
                           f"runtime's crash accounting sees it")
        if self.zone:
            dotted = self._resolve(_dotted_name(node.func))
            if dotted is not None:
                if dotted in _BANNED_CALLS:
                    self._emit(node, "DYN101",
                               f"`{dotted}()` reads wallclock/entropy inside a "
                               f"deterministic zone; use simulator time "
                               f"(`sim.now`) or a seeded stream")
                elif dotted.startswith("random."):
                    self._emit(node, "DYN101",
                               f"`{dotted}()` uses the global random state; "
                               f"use the cluster's seeded StreamRegistry")
                elif dotted.startswith("numpy.random."):
                    attr = dotted.split(".", 2)[2]
                    if attr not in _NP_RANDOM_ALLOWED:
                        self._emit(node, "DYN101",
                                   f"`{dotted}()` draws from numpy's global "
                                   f"random state; construct a seeded "
                                   f"Generator instead")
                    elif attr == "default_rng" and not node.args and not node.keywords:
                        self._emit(node, "DYN101",
                                   "`default_rng()` without a seed is entropy-"
                                   "seeded; pass an explicit seed")
            if isinstance(node.func, ast.Name) and node.func.id in self.from_random:
                self._emit(node, "DYN101",
                           f"`{node.func.id}()` (from random) uses the global "
                           f"random state; use a seeded stream")
        self.generic_visit(node)

    # -- DYN1101: farm-protocol access outside its home -----------------
    def _check_farm_call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "Window":
            self._emit(node, "DYN1101",
                       "ad-hoc RMA `Window(...)` construction in library "
                       "code; one-sided windows belong to repro.mpi.rma "
                       "(and the farm runtime that consumes them)")
            return
        if name not in _FARM_TAG_SINKS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if (
                isinstance(arg, ast.Constant)
                and type(arg.value) is int
                and _FARM_TAG_LO <= arg.value < _FARM_TAG_HI
            ):
                self._emit(node, "DYN1101",
                           f"raw tag {arg.value} is inside the reserved "
                           f"farm wire-protocol band "
                           f"[{_FARM_TAG_LO}, {_FARM_TAG_HI}); application "
                           f"code must not splice into the master/worker "
                           f"conversation — use repro.farm (TAG_* "
                           f"constants) or a tag outside the band")
                return

    # -- DYN201: mutable dataclass defaults -----------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_dataclass(node):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    reason = self._mutable_default(stmt.value)
                    if reason is not None:
                        self._emit(stmt, "DYN201",
                                   f"dataclass field default is a mutable "
                                   f"{reason} shared by every instance; use "
                                   f"`field(default_factory=...)`")
        self.generic_visit(node)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dotted = _dotted_name(target)
            if dotted in ("dataclass", "dataclasses.dataclass"):
                return True
        return False

    @staticmethod
    def _mutable_default(value: ast.AST) -> Optional[str]:
        if isinstance(value, (ast.List, ast.Set)):
            return "literal list/set"
        if isinstance(value, ast.Dict):
            return "literal dict"
        if isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted in _MUTABLE_CTORS:
                return f"{dotted}()"
            if dotted is not None and "." in dotted:
                head, _, attr = dotted.rpartition(".")
                if attr in _NP_ARRAY_CTORS and head.split(".")[-1] in (
                    "np", "numpy"
                ):
                    return f"{dotted}() array"
        return None


def _in_deterministic_zone(path: pathlib.Path) -> bool:
    return ZONES["deterministic"].contains(path)


def _in_fault_injection_zone(path: pathlib.Path) -> bool:
    """Library code (under the ``repro`` package) outside the
    resilience package: the only place DYN301 applies.  Tests,
    examples, and benchmarks inject faults freely."""
    return ZONES["fault"].contains(path)


def _in_row_membership_zone(path: pathlib.Path) -> bool:
    """Data-plane hot paths (``core``/``resilience``) where DYN401
    applies; the set-based reference oracle is exempt by filename."""
    return ZONES["row_membership"].contains(path)


def _in_instrumentation_zone(path: pathlib.Path) -> bool:
    """Library code (under ``repro``) where DYN601 applies, minus the
    sanctioned instrumentation homes and stdout-facing files."""
    return ZONES["instrumentation"].contains(path)


def _in_process_zone(path: pathlib.Path) -> bool:
    """Library code (under ``repro``) outside the campaign engine: the
    only place DYN801 applies.  Tests, examples, and benchmarks may
    spawn processes freely."""
    return ZONES["process"].contains(path)


def _in_kernel_zone(path: pathlib.Path) -> bool:
    """Library code (under ``repro``) outside the kernel modules: the
    only place DYN901 applies.  Tests and benchmarks may poke at heaps
    freely (the bounded-heap regression test must)."""
    return ZONES["kernel"].contains(path)


def _in_farm_zone(path: pathlib.Path) -> bool:
    """Library code (under ``repro``) outside the farm runtime and the
    one-sided home (``mpi/rma*.py``): the only place DYN1101 applies.
    Tests and benchmarks exercise the protocol freely."""
    return ZONES["farm"].contains(path)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    deterministic_zone: bool = False,
    fault_injection_zone: bool = False,
    row_membership_zone: bool = False,
    instrumentation_zone: bool = False,
    process_zone: bool = False,
    kernel_zone: bool = False,
    farm_zone: bool = False,
) -> list[LintFinding]:
    """Lint python ``source``; ``deterministic_zone`` enables DYN101,
    ``fault_injection_zone`` enables DYN301, ``row_membership_zone``
    enables DYN401, ``instrumentation_zone`` enables DYN601,
    ``process_zone`` enables DYN801, ``kernel_zone`` enables DYN901,
    ``farm_zone`` enables DYN1101."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, exc.offset or 0,
                            "DYN000", f"syntax error: {exc.msg}")]
    linter = _Linter(path, source, deterministic_zone=deterministic_zone,
                     fault_injection_zone=fault_injection_zone,
                     row_membership_zone=row_membership_zone,
                     instrumentation_zone=instrumentation_zone,
                     process_zone=process_zone,
                     kernel_zone=kernel_zone,
                     farm_zone=farm_zone)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.col))


def lint_file(path: pathlib.Path) -> list[LintFinding]:
    return lint_source(
        path.read_text(encoding="utf-8"),
        str(path),
        deterministic_zone=_in_deterministic_zone(path),
        fault_injection_zone=_in_fault_injection_zone(path),
        row_membership_zone=_in_row_membership_zone(path),
        instrumentation_zone=_in_instrumentation_zone(path),
        process_zone=_in_process_zone(path),
        kernel_zone=_in_kernel_zone(path),
        farm_zone=_in_farm_zone(path),
    )


def lint_paths(paths: Iterable[str | pathlib.Path]) -> list[LintFinding]:
    """Lint files and/or directory trees (``*.py``, recursively)."""
    findings: list[LintFinding] = []
    for raw in paths:
        p = pathlib.Path(raw)
        files: Sequence[pathlib.Path]
        if p.is_dir():
            files = sorted(p.rglob("*.py"))
        else:
            files = [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings


# ---------------------------------------------------------------------------
# dynrace determinism rules (DYN703/704/705)
# ---------------------------------------------------------------------------

#: suppression marker for the race rules — distinct from dynsan's so a
#: line can be fine for one tool and a finding for the other
RACE_SUPPRESS_MARK = ZONES["rng"].suppress_mark

#: calls whose *relative order* is observable in the exported trace:
#: message emission (endpoint/collective generators plus the nonblocking
#: pair) and dynscope event recording
_ORDER_SINKS = GENERATOR_METHODS | GENERATOR_FUNCS | {
    "isend", "irecv", "instant", "complete", "count", "observe",
}

#: the one sanctioned RNG construction site (seeded StreamRegistry) —
#: declared in the shared zone registry, recognized via ``is_home``
RNG_HOME = (ZONES["rng"].home_dir, ZONES["rng"].home_prefix)


class _RaceLinter(ast.NodeVisitor):
    """AST determinism rules for dynrace.

    Unlike :class:`_Linter` there is no zone gating: these rules apply
    to every path handed to the ``race`` subcommand.  Set-typedness is
    inferred syntactically — literals, comprehensions, ``set()`` /
    ``frozenset()`` calls, set-operator expressions over those, and
    local names assigned from them.  ``sorted(...)`` launders: iterating
    a sorted set is deterministic.  Dict iteration is *not* flagged —
    Python dicts preserve insertion order, which the program controls.
    """

    def __init__(self, path: str, source: str, *, rng_home: bool = False):
        self.path = path
        self.lines = source.splitlines()
        self.rng_home = rng_home
        self.findings: list[LintFinding] = []
        self.aliases: dict[str, str] = {}
        self.from_random: set[str] = set()
        #: stack of per-scope {name: is-set-typed} maps
        self._set_vars: list[dict[str, bool]] = [{}]

    # -- plumbing -------------------------------------------------------
    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return RACE_SUPPRESS_MARK in self.lines[line - 1]
        return False

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if not self._suppressed(node):
            self.findings.append(LintFinding(
                self.path, node.lineno, node.col_offset, code, message
            ))

    def _resolve(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        real = self.aliases.get(head, head)
        return f"{real}.{rest}" if rest else real

    # -- scopes ---------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._set_vars.append({})
        self.generic_visit(node)
        self._set_vars.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- set-typedness inference ----------------------------------------
    def _is_setty(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id == "sorted":
                    return False
            if isinstance(func, ast.Attribute):
                # s.union(t), s.difference(t), ... keep set-typedness
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference", "copy"):
                    return self._is_setty(func.value)
            return False
        if isinstance(node, ast.Name):
            for scope in reversed(self._set_vars):
                if node.id in scope:
                    return scope[node.id]
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setty(node.left) or self._is_setty(node.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        setty = self._is_setty(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._set_vars[-1][target.id] = setty
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self._set_vars[-1][node.target.id] = self._is_setty(node.value)
        self.generic_visit(node)

    # -- imports (alias tracking + DYN704 on the import itself) ---------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            self.aliases[alias.asname or top] = top
            if top == "random":
                self._emit(node, "DYN704",
                           "the `random` module is process-global mutable "
                           "state; draw from the cluster's seeded "
                           "StreamRegistry (simcluster/rng.py) instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "random":
            self._emit(node, "DYN704",
                       "importing from `random` pulls in process-global "
                       "RNG state; use the seeded StreamRegistry "
                       "(simcluster/rng.py) instead")
            self.from_random.update(a.asname or a.name for a in node.names)
        self.generic_visit(node)

    # -- DYN703 / DYN705: set-ordered loops -----------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_setty(node.iter):
            self._classify_set_loop(node)
        self.generic_visit(node)

    def _classify_set_loop(self, node: ast.For) -> None:
        emits: Optional[ast.AST] = None
        accumulates: Optional[ast.AugAssign] = None
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if emits is None and isinstance(sub, ast.Call):
                    func = sub.func
                    name = (func.attr if isinstance(func, ast.Attribute)
                            else func.id if isinstance(func, ast.Name)
                            else None)
                    if name in _ORDER_SINKS:
                        emits = sub
                if accumulates is None and isinstance(sub, ast.AugAssign):
                    if isinstance(sub.op, (ast.Add, ast.Sub, ast.Mult)):
                        accumulates = sub
        if emits is not None:
            self._emit(node, "DYN703",
                       "loop over an unordered set emits messages/trace "
                       "events — emission order then depends on hash "
                       "seeding, not the program; iterate "
                       "`sorted(...)` instead")
        if accumulates is not None:
            self._emit(accumulates, "DYN705",
                       "accumulation inside a loop over an unordered set: "
                       "float addition does not commute with reordering, "
                       "so the total depends on hash seeding; iterate "
                       "`sorted(...)` or use math.fsum over a sorted view")

    # -- calls: DYN704 + sum() over a set (DYN705) ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._resolve(_dotted_name(node.func))
        if dotted is not None and dotted.startswith("random."):
            self._emit(node, "DYN704",
                       f"`{dotted}()` draws from the process-global random "
                       f"state; use the seeded StreamRegistry "
                       f"(simcluster/rng.py)")
        elif dotted is not None and dotted.startswith("numpy.random."):
            attr = dotted.split(".", 2)[2]
            if attr not in _NP_RANDOM_ALLOWED:
                self._emit(node, "DYN704",
                           f"`{dotted}()` draws from numpy's global random "
                           f"state; take a stream from the seeded "
                           f"StreamRegistry (simcluster/rng.py)")
            elif attr == "default_rng" and not node.args and not node.keywords:
                self._emit(node, "DYN704",
                           "`default_rng()` without a seed is entropy-"
                           "seeded — irreproducible by construction; take "
                           "a stream from the seeded StreamRegistry")
            elif not self.rng_home:
                self._emit(node, "DYN704",
                           f"`{dotted}(...)` constructs an ad-hoc generator "
                           f"outside the sanctioned home "
                           f"(simcluster/rng.py); even seeded, it "
                           f"fragments the run's single seed tree — take "
                           f"a stream from the StreamRegistry")
        if isinstance(node.func, ast.Name):
            if node.func.id in self.from_random:
                self._emit(node, "DYN704",
                           f"`{node.func.id}()` (from random) draws from "
                           f"the process-global random state; use the "
                           f"seeded StreamRegistry")
            elif node.func.id in ("sum", "fsum") and node.args:
                arg = node.args[0]
                if self._is_setty(arg) or (
                    isinstance(arg, (ast.GeneratorExp, ast.ListComp))
                    and any(self._is_setty(g.iter) for g in arg.generators)
                ):
                    self._emit(node, "DYN705",
                               "summation over an unordered set: float "
                               "addition does not commute with reordering, "
                               "so the result depends on hash seeding; "
                               "sum over `sorted(...)`")
        self.generic_visit(node)


def race_lint_source(source: str, path: str = "<string>", *,
                     rng_home: bool = False) -> list[LintFinding]:
    """Run the dynrace AST rules (DYN703/704/705) over ``source``.
    ``rng_home`` marks the sanctioned StreamRegistry module, where
    seeded generator construction is the whole point."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, exc.offset or 0,
                            "DYN000", f"syntax error: {exc.msg}")]
    linter = _RaceLinter(path, source, rng_home=rng_home)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.col))


def _is_rng_home(path: pathlib.Path) -> bool:
    return ZONES["rng"].is_home(path)


def race_lint_file(path: pathlib.Path) -> list[LintFinding]:
    return race_lint_source(
        path.read_text(encoding="utf-8"),
        str(path),
        rng_home=_is_rng_home(path),
    )


def race_lint_paths(
    paths: Iterable[str | pathlib.Path],
) -> list[LintFinding]:
    """Race-lint files and/or directory trees (``*.py``, recursively)."""
    findings: list[LintFinding] = []
    for raw in paths:
        p = pathlib.Path(raw)
        files: Sequence[pathlib.Path]
        if p.is_dir():
            files = sorted(p.rglob("*.py"))
        else:
            files = [p]
        for f in files:
            findings.extend(race_lint_file(f))
    return findings
