"""Shared finding-baseline files for the analysis CLIs.

Every analyzer (``lint``, ``flow``, ``race``) exposes the same
``--baseline FILE`` / ``--write-baseline FILE`` pair: a baseline is a
JSON snapshot of finding *fingerprints* — line-independent stable ids
— so known findings can be carried while new ones still fail the
gate.  Any finding object with ``fingerprint``/``code``/``path`` and
``message`` attributes works; ``function`` is optional (lint findings
have none).
"""

from __future__ import annotations

import json

__all__ = ["load_baseline", "save_baseline"]


def load_baseline(path) -> set:
    """Read a baseline file; returns the set of suppressed
    fingerprints (empty for a missing file)."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return set()
    return {str(e["fingerprint"]) for e in data.get("findings", [])}


def save_baseline(path, findings, *, tool: str = "dynflow") -> None:
    data = {
        "tool": tool,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "code": f.code,
                "path": f.path,
                "function": getattr(f, "function", ""),
                "message": f.message,
            }
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
