"""Runtime MPI sanitizer (the MUST-style layer of dynsan).

When enabled, every :class:`~repro.simcluster.cluster.Cluster` owns a
:class:`CommSanitizer` and the MPI layer reports message life-cycle
events to it:

* every injected message (eager or rendezvous) until a receive
  consumes it;
* every posted receive until a message matches it;
* every rank's blocking state (what it waits on, and on whom);
* every collective entry (group, tag, algorithm name, root).

From these the sanitizer provides two services:

**Fail-fast deadlock detection.**  Each blocked rank contributes at
most one *wait-for* edge: a receiver with an explicit source waits on
that source (unless a matching message is already in flight), and a
rendezvous sender waits on its destination (unless the destination has
already posted a matching receive).  Whenever a rank blocks — reported
both by the comm layer and by the kernel's block watchdog — the
sanitizer walks the edge chain; a cycle raises
:class:`~repro.errors.CommDeadlockError` naming every rank in the
cycle and its pending operation.  This converts the classic
head-to-head rendezvous send (and recv/recv cycles) into an immediate
diagnostic instead of a drained-heap :class:`DeadlockError` — or, on a
cluster with periodic daemons, instead of an unbounded hang.

**Finalize-time accounting.**  :meth:`CommSanitizer.finalize` reports
messages that were sent but never received, receives that were posted
but never matched, collectives entered by only part of their group,
and ANY_SOURCE receives that raced with multiple in-flight candidates
(a warning — wildcard gathers are legitimate, but the match order is
implementation-defined in real MPI).

**One-sided (RMA) epoch checking.**  The :mod:`repro.mpi.rma` layer
reports lock/unlock/op events; the sanitizer enforces passive-target
epoch discipline:

=======  ==========================================================
code     meaning
=======  ==========================================================
DYN1111  unpaired ``unlock`` — no matching ``lock`` epoch is open on
         that (window, target); also raised at finalize for epochs
         opened and never closed
DYN1112  RMA access (put/get/accumulate/fetch_and_op/
         compare_and_swap) outside any open epoch on its target
DYN1113  conflicting lock acquisition — an origin requested a second
         lock on a (window, target) it already holds or is waiting
         on (nested/double locking self-deadlocks in real MPI)
=======  ==========================================================

Enabling: ``ClusterSpec(sanitize=True)`` or ``DYNMPI_SANITIZE=1`` in
the environment (``sanitize=False`` wins over the variable; the
default ``None`` defers to it).  The sanitizer is strictly opt-in and
adds zero work when off — benchmarks guard this.

This module deliberately imports nothing from :mod:`repro.mpi` or
:mod:`repro.simcluster` (the cluster imports *us*), so the wildcard
constants are mirrored here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import CommDeadlockError, SanitizerError

__all__ = ["CommSanitizer", "SanitizerReport", "sanitizer_enabled"]

#: mirror of repro.mpi.status.ANY_SOURCE / ANY_TAG (import cycle)
_ANY = -1


def sanitizer_enabled(spec: Any) -> bool:
    """Resolve the opt-in: explicit ``spec.sanitize`` wins, the
    ``DYNMPI_SANITIZE`` environment variable fills in for ``None``."""
    explicit = getattr(spec, "sanitize", None)
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("DYNMPI_SANITIZE", "0") not in ("", "0")


def _tag_matches(wanted: int, actual: int) -> bool:
    return wanted in (_ANY, actual)


@dataclass
class _MsgRec:
    """An injected message not yet consumed by a receive."""

    src: int
    dst: int
    tag: int
    nbytes: int
    rendezvous: bool

    def describe(self) -> str:
        kind = "rendezvous" if self.rendezvous else "eager"
        return f"{kind} send {self.src}->{self.dst} tag={self.tag} ({self.nbytes}B)"


@dataclass
class _RecvRec:
    """A posted receive not yet matched."""

    rank: int
    source: int
    tag: int

    def describe(self) -> str:
        src = "ANY_SOURCE" if self.source == _ANY else str(self.source)
        tag = "ANY_TAG" if self.tag == _ANY else str(self.tag)
        return f"recv posted by {self.rank} from {src} tag={tag}"


@dataclass
class _BlockRec:
    """What a blocked rank is waiting on."""

    kind: str            # "recv" | "recv-poll" | "send-rdv" | "recv-data"
    peer: int            # source (recv) or destination (send); may be _ANY
    tag: int
    env_key: int = 0     # id() of the rendezvous envelope, for send-rdv

    def describe(self) -> str:
        if self.kind in ("recv", "recv-poll"):
            src = "ANY_SOURCE" if self.peer == _ANY else f"rank {self.peer}"
            return f"blocked in recv from {src} (tag={self.tag})"
        if self.kind == "send-rdv":
            return f"blocked in rendezvous send to rank {self.peer} (tag={self.tag})"
        return f"blocked waiting for rendezvous data from rank {self.peer}"


@dataclass
class _CollRec:
    """First-entrant record for one collective (group id, tag)."""

    name: str
    root: Optional[int]
    group_size: int
    entered: set = field(default_factory=set)


@dataclass
class SanitizerReport:
    """Outcome of :meth:`CommSanitizer.finalize`."""

    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"E: {e}" for e in self.errors] + [f"W: {w}" for w in self.warnings]
        return "\n".join(lines) or "sanitizer: clean"


class CommSanitizer:
    """Tracks in-flight communication state for one cluster.

    All hooks are O(pending ops) at worst and touch nothing global;
    the comm layer only calls them when the cluster was built with the
    sanitizer enabled.
    """

    def __init__(self) -> None:
        self._msgs: dict[int, _MsgRec] = {}        # id(envelope) -> record
        self._recvs: dict[int, _RecvRec] = {}      # id(_PendingRecv) -> record
        self._blocked: dict[int, _BlockRec] = {}   # rank -> record
        self._colls: dict[tuple, _CollRec] = {}    # (group gid, tag) -> record
        #: (origin, window id, target) -> "waiting" | "held" RMA epochs
        self._rma: dict[tuple[int, int, int], str] = {}
        #: window id -> window name, for diagnostics
        self._rma_names: dict[int, str] = {}
        self._dead: set[int] = set()               # ranks whose process died
        self.warnings: list[str] = []
        self.n_sends = 0
        self.n_matches = 0

    # ------------------------------------------------------------------
    # failed ranks (called from SimComm.mark_rank_dead)
    # ------------------------------------------------------------------
    def mark_dead(self, rank: int) -> None:
        """A rank's process died (injected fault).  Its in-flight state
        stops counting as a correctness violation: finalize downgrades
        operations involving it to warnings, and the wait-for graph no
        longer treats it as a live peer (poisoning, not progress,
        resolves waits on a dead rank)."""
        self._dead.add(rank)
        self._blocked.pop(rank, None)

    # ------------------------------------------------------------------
    # message life cycle (called from repro.mpi.comm)
    # ------------------------------------------------------------------
    def on_send(self, env) -> None:
        self.n_sends += 1
        self._msgs[id(env)] = _MsgRec(
            env.src, env.dst, env.tag, env.nbytes, env.rendezvous
        )

    def on_recv_posted(self, key: int, rank: int, source: int, tag: int) -> None:
        self._recvs[key] = _RecvRec(rank, source, tag)

    def on_match(
        self,
        env,
        rank: int,
        source: int,
        tag: int,
        post_key: Optional[int] = None,
    ) -> None:
        """A receive consumed ``env`` at ``rank`` (query ``source``/``tag``)."""
        self.n_matches += 1
        self._msgs.pop(id(env), None)
        if post_key is not None:
            self._recvs.pop(post_key, None)
        # The match satisfies the rank's recv wait even though the kernel
        # has not resumed it yet; keeping the block record past this point
        # would let the chain walk see a phantom edge (the suppressing
        # message was just popped above).
        blk = self._blocked.get(rank)
        if blk is not None and blk.kind in ("recv", "recv-poll"):
            del self._blocked[rank]
        if source == _ANY:
            rivals = sorted({
                m.src for m in self._msgs.values()
                if m.dst == rank and m.src != env.src and _tag_matches(tag, m.tag)
            })
            if rivals:
                self.warnings.append(
                    f"ANY_SOURCE race: recv at rank {rank} (tag="
                    f"{'ANY_TAG' if tag == _ANY else tag}) matched source "
                    f"{env.src} while sources {rivals} also had matching "
                    f"messages pending"
                )

    # ------------------------------------------------------------------
    # blocking state + wait-for-graph deadlock detection
    # ------------------------------------------------------------------
    def on_block(
        self, rank: int, kind: str, peer: int, tag: int, env=None
    ) -> None:
        self._blocked[rank] = _BlockRec(kind, peer, tag, 0 if env is None else id(env))
        self.check_deadlock()

    def on_unblock(self, rank: int) -> None:
        self._blocked.pop(rank, None)

    def kernel_block_hook(self, proc, request) -> None:
        """Kernel watchdog: re-check the wait-for graph whenever *any*
        simulated process blocks (see ``Simulator.add_watchdog``)."""
        self.check_deadlock()

    def _wait_edge(self, rank: int, b: _BlockRec) -> Optional[int]:
        """The rank this blocked rank is definitely waiting on, or None.

        Edges are conservative: any already-pending message (or posted
        receive, for a rendezvous sender) that could resolve the wait
        suppresses the edge, so a reported cycle is a true deadlock.
        """
        if b.peer in self._dead:
            return None  # dead peers resolve by poisoning, not progress
        if b.kind in ("recv", "recv-poll"):
            if b.peer == _ANY:
                return None
            for m in self._msgs.values():
                if m.src == b.peer and m.dst == rank and _tag_matches(b.tag, m.tag):
                    return None
            return b.peer
        if b.kind == "send-rdv":
            if b.env_key not in self._msgs:
                return None  # RTS consumed: the transfer is in progress
            for r in self._recvs.values():
                if (
                    r.rank == b.peer
                    and r.source in (_ANY, rank)
                    and r.tag in (_ANY, b.tag)
                ):
                    return None
            return b.peer
        return None  # recv-data: pure network events, always progresses

    def check_deadlock(self) -> None:
        """Walk wait-for chains from every blocked rank; raise
        :class:`CommDeadlockError` on the first cycle found."""
        edges: dict[int, int] = {}
        for rank, b in self._blocked.items():
            peer = self._wait_edge(rank, b)
            if peer is not None and peer in self._blocked:
                edges[rank] = peer
        for start in edges:
            path: list[int] = []
            seen: set[int] = set()
            cur: Optional[int] = start
            while cur is not None and cur in edges and cur not in seen:
                seen.add(cur)
                path.append(cur)
                cur = edges[cur]
            if cur is not None and cur in seen:
                cycle = path[path.index(cur):]
                ops = {r: self._blocked[r].describe() for r in cycle}
                raise CommDeadlockError(cycle, ops)

    # ------------------------------------------------------------------
    # one-sided RMA epochs (called from repro.mpi.rma)
    # ------------------------------------------------------------------
    def on_rma_lock_request(self, origin: int, wid: int, name: str,
                            target: int, shared: bool) -> None:
        self._rma_names[wid] = name
        key = (origin, wid, target)
        state = self._rma.get(key)
        if state is not None:
            mode = "holds" if state == "held" else "is already waiting for"
            raise SanitizerError(
                f"DYN1113: conflicting lock acquisition on window "
                f"'{name}' target {target}: origin {origin} requested a "
                f"{'shared' if shared else 'exclusive'} lock it {mode} — "
                f"nested locking of the same (window, target) "
                f"self-deadlocks in real MPI"
            )
        self._rma[key] = "waiting"

    def on_rma_lock_granted(self, origin: int, wid: int, name: str,
                            target: int) -> None:
        self._rma[(origin, wid, target)] = "held"

    def on_rma_unlock(self, origin: int, wid: int, name: str,
                      target: int) -> None:
        key = (origin, wid, target)
        if self._rma.get(key) != "held":
            raise SanitizerError(
                f"DYN1111: unpaired unlock on window '{name}' target "
                f"{target}: origin {origin} closed an epoch it never "
                f"opened"
            )
        del self._rma[key]

    def on_rma_op(self, origin: int, wid: int, name: str, target: int,
                  op: str) -> None:
        if self._rma.get((origin, wid, target)) != "held":
            raise SanitizerError(
                f"DYN1112: RMA access outside an epoch: origin {origin} "
                f"called {op} on window '{name}' target {target} without "
                f"holding a lock on it — in real MPI the access races "
                f"with the target's exposure state"
            )

    # ------------------------------------------------------------------
    # collectives (called from repro.mpi.collectives)
    # ------------------------------------------------------------------
    def on_collective(
        self,
        rank: int,
        gid: int,
        tag: int,
        name: str,
        root: Optional[int],
        group_size: int,
    ) -> None:
        rec = self._colls.get((gid, tag))
        if rec is None:
            self._colls[(gid, tag)] = _CollRec(name, root, group_size, {rank})
            return
        if rec.name != name or rec.root != root:
            raise SanitizerError(
                f"collective mismatch on group {gid} tag {tag}: rank {rank} "
                f"entered {name}(root={root}) but rank(s) "
                f"{sorted(rec.entered)} entered {rec.name}(root={rec.root}) "
                f"— SPMD ordering violation"
            )
        rec.entered.add(rank)

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize(self, *, raise_on_error: bool = True) -> SanitizerReport:
        """Report leftover state after a run.  With ``raise_on_error``
        (the default), unmatched sends/recvs raise
        :class:`SanitizerError`; warnings never raise."""
        report = SanitizerReport(warnings=list(self.warnings))
        for m in self._msgs.values():
            if m.src in self._dead or m.dst in self._dead:
                report.warnings.append(
                    f"send abandoned by rank failure: {m.describe()}"
                )
            else:
                report.errors.append(f"unmatched send: {m.describe()}")
        for r in self._recvs.values():
            if r.rank in self._dead or r.source in self._dead:
                report.warnings.append(
                    f"receive abandoned by rank failure: {r.describe()}"
                )
            else:
                report.errors.append(f"unmatched receive: {r.describe()}")
        for (origin, wid, target), state in sorted(self._rma.items()):
            name = self._rma_names.get(wid, f"#{wid}")
            desc = (
                f"DYN1111: RMA epoch never closed: origin {origin} "
                f"{'held' if state == 'held' else 'still waited for'} a "
                f"lock on window '{name}' target {target} at finalize"
            )
            if origin in self._dead or target in self._dead:
                report.warnings.append(
                    f"RMA epoch abandoned by rank failure: origin "
                    f"{origin} on window '{name}' target {target}"
                )
            else:
                report.errors.append(desc)
        for (gid, tag), rec in sorted(self._colls.items()):
            if 0 < len(rec.entered) < rec.group_size:
                report.warnings.append(
                    f"incomplete collective {rec.name} (group {gid}, tag "
                    f"{tag}): only ranks {sorted(rec.entered)} of "
                    f"{rec.group_size} entered"
                )
        if report.errors and raise_on_error:
            raise SanitizerError(
                "sanitizer finalize found "
                f"{len(report.errors)} error(s):\n  "
                + "\n  ".join(report.errors)
            )
        return report
