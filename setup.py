"""Setup shim.

This project is fully described by pyproject.toml; this file exists so
`pip install -e .` works on environments whose setuptools lacks the
`wheel` package required for PEP 660 editable builds (pip then falls
back to the legacy `setup.py develop` path).
"""

from setuptools import setup

setup()
