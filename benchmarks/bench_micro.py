"""Micro-benchmarks of the substrate itself (classic pytest-benchmark
timing): event-loop throughput, collective latency, redistribution
speed, and the comm-model fit.

These are the knobs the figure benches stand on; regressions here blow
up every experiment's wall time.
"""

import numpy as np
import pytest

from repro.config import ClusterSpec, NodeSpec, pentium_cluster
from repro.core import measure_comm_model
from repro.core.distribution import BlockDistribution, shares_to_blocks
from repro.dmem import ProjectedArray
from repro.mpi import Group, run_spmd
from repro.mpi import collectives as coll
from repro.simcluster import Cluster, Compute, Simulator, Sleep


def test_kernel_event_throughput(benchmark):
    """Pure event-loop dispatch rate."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(20000):
                yield Sleep(0.001)

        sim.spawn(ticker(), name="t")
        sim.run()
        return sim.n_events

    events = benchmark(run)
    assert events >= 20000


def test_rr_scheduling_throughput(benchmark):
    """Round-robin slicing under contention."""

    def run():
        cluster = Cluster(ClusterSpec(n_nodes=1, node=NodeSpec(speed=1e8)))
        node = cluster.nodes[0]
        node.start_competing()
        node.start_competing()

        def worker():
            for _ in range(200):
                yield Compute(1e5)

        p = cluster.sim.spawn(worker(), name="w", node=node)
        cluster.sim.run_all([p])
        return cluster.sim.n_events

    benchmark(run)


def test_allgather_dissemination_latency(benchmark):
    """Simulated latency of the runtime's per-cycle load exchange."""

    def run():
        cluster = Cluster(pentium_cluster(16))
        group = Group(list(range(16)))

        def prog(ep):
            for _ in range(10):
                yield from coll.allgather_dissemination(ep, group, ep.rank)

        run_spmd(cluster, prog)
        return cluster.sim.now / 10

    per_allgather = benchmark(run)
    assert per_allgather < 0.005  # < 5 ms simulated at 16 nodes


def test_redistribution_throughput(benchmark):
    """Rows moved per real second through pack/alltoallv/unpack."""
    from repro.core import DynMPIJob, NearestNeighbor, AccessMode

    def run():
        from repro.config import RuntimeSpec
        from repro.simcluster import CycleTrigger, LoadScript

        cluster = Cluster(pentium_cluster(4))
        cluster.install_load_script(LoadScript(cycle_triggers=[
            CycleTrigger(cycle=2, node=0, action="start", count=2)
        ]))
        job = DynMPIJob(cluster, RuntimeSpec(
            grace_period=2, post_redist_period=3, allow_removal=False,
            daemon_interval=0.01,
        ))

        def prog(ctx):
            A = ctx.register_dense("A", (2048, 512), materialized=False)
            ctx.init_phase(1, 2048, NearestNeighbor(row_nbytes=4096))
            ctx.add_array_access(1, "A", AccessMode.READWRITE, -1, 1)
            ctx.commit()
            work = np.full(1, 1e5)
            for _ in range(30):
                yield from ctx.begin_cycle()
                if ctx.participating():
                    yield from ctx.compute(
                        1, lambda s, e: np.full(e - s + 1, 2e3)
                    )
                yield from ctx.end_cycle()

        job.launch(prog)
        assert any(ev.kind == "redistribute" for ev in job.events)
        return job

    benchmark(run)


def test_comm_model_fit_speed(benchmark):
    """Micro-benchmark fitting (ping-pong sweeps) stays cheap."""
    spec = pentium_cluster(2)
    model = benchmark(lambda: measure_comm_model(spec, reps=4))
    assert model.cpu_byte_s > 0


def test_shares_to_blocks_speed(benchmark):
    weights = np.random.default_rng(0).random(100_000) + 0.1
    shares = [0.3, 0.2, 0.25, 0.25]
    dist = benchmark(lambda: shares_to_blocks(100_000, shares, weights))
    assert isinstance(dist, BlockDistribution)


def test_projected_array_pack_speed(benchmark):
    arr = ProjectedArray("a", (4096, 512), materialized=True)
    arr.hold(range(1024))

    def run():
        payload, nbytes = arr.pack(list(range(1024)))
        return nbytes

    nbytes = benchmark(run)
    assert nbytes == 1024 * arr.row_nbytes
