"""Farm throughput: jobs/sec per loop-scheduling policy.

The farm's headline perf claim: decentralized RMA self-scheduling
(workers claim chunks off a shared loop counter with one-sided
``fetch_and_op``) beats master-dispatch self-scheduling on jobs/sec,
because the master's CPU stops being the dispatch bottleneck — each
chunk costs the master-node NIC one one-sided round trip instead of a
recv + a dispatched send through the master's process.

Grid: every policy x ranks x {no churn, churn}.  The churn column runs
the same farm under a worker kill at cycle 2 plus a transient
competing-load burst (park/readmit) — elasticity overhead is part of
the measured number, and every cell asserts the completed-result
digest against the computed reference before publishing a rate.

``jobs/sec`` is simulated throughput (jobs / simulated seconds), so
cells are machine-independent and byte-stable: the checked-in
``results/BENCH_farm_throughput.json`` is an exact baseline, not a
noisy timing.

``DYNMPI_FARM_SMOKE=1`` restricts the grid to the small shared cells
and writes ``results/BENCH_farm_throughput_smoke.json``, which
``check_farm_regression.py`` gates against the baseline (CI farm-smoke
job).
"""

from __future__ import annotations

import os

from repro.config import ClusterSpec
from repro.farm import POLICIES, FarmSpec, farm_digest, reference_results, run_farm
from repro.resilience import CycleFault, FailureScript
from repro.simcluster import Cluster, CycleTrigger, LoadScript

SMOKE = os.environ.get("DYNMPI_FARM_SMOKE", "") not in ("", "0")

#: (ranks, n_jobs) grid cells; the small cell is shared between the
#: full baseline and the smoke run so the regression gate has exact
#: cells to compare
SMALL_CELL = (16, 8_000)
FULL_CELLS = (SMALL_CELL, (64, 100_000))
CELLS = (SMALL_CELL,) if SMOKE else FULL_CELLS
CHUNK = 16
SEED = 0


def _churn_scripts(ranks: int):
    """Deterministic churn for a ``ranks``-node cluster: kill one
    worker's node at cycle 2, load another from cycle 3 to 5."""
    kill_node = ranks // 4
    load_node = ranks // 2
    failure = FailureScript(cycle_faults=[
        CycleFault(cycle=2, node=kill_node, action="kill"),
    ])
    load = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=3, node=load_node, action="start", count=2),
        CycleTrigger(cycle=5, node=load_node, action="stop", count=2),
    ])
    return load, failure


def _run_cell(policy: str, ranks: int, n_jobs: int, churn: bool) -> dict:
    spec = FarmSpec(n_jobs=n_jobs, policy=policy, chunk=CHUNK, seed=SEED)
    cluster = Cluster(ClusterSpec(n_nodes=ranks, seed=SEED,
                                  name=f"bench-farm-{policy}"))
    load, failure = _churn_scripts(ranks) if churn else (None, None)
    result = run_farm(cluster, spec, load_script=load,
                      failure_script=failure)
    expected = farm_digest(reference_results(n_jobs, SEED))
    assert result.jobs_done == n_jobs, (policy, ranks, churn)
    assert result.digest == expected, (policy, ranks, churn)
    return {
        "policy": policy,
        "ranks": ranks,
        "n_jobs": n_jobs,
        "churn": int(churn),
        "jobs_per_sec": round(result.jobs_per_sec, 3),
        "wall_time": round(result.wall_time, 9),
        "requeued": result.n_requeued,
        "duplicates": result.duplicates,
    }


def test_farm_throughput(record_table):
    cells = []
    for ranks, n_jobs in CELLS:
        for churn in (False, True):
            for policy in POLICIES:
                cells.append(_run_cell(policy, ranks, n_jobs, churn))

    lines = [
        "farm throughput (simulated jobs/sec; digest-checked)",
        f"{'policy':<11} {'ranks':>5} {'jobs':>7} {'churn':>5} "
        f"{'jobs/sec':>10} {'requeued':>8}",
    ]
    for c in cells:
        lines.append(
            f"{c['policy']:<11} {c['ranks']:>5} {c['n_jobs']:>7} "
            f"{c['churn']:>5} {c['jobs_per_sec']:>10.0f} {c['requeued']:>8}"
        )
    for ranks, n_jobs in CELLS:
        rates = {c["policy"]: c["jobs_per_sec"] for c in cells
                 if c["ranks"] == ranks and not c["churn"]}
        lines.append(
            f"rma vs self @ {ranks} ranks: "
            f"{rates['rma'] / rates['self']:.2f}x"
        )
        # the acceptance claim: decentralized beats master dispatch
        assert rates["rma"] > rates["self"], (ranks, rates)

    name = "farm_throughput_smoke" if SMOKE else "farm_throughput"
    record_table(name, "\n".join(lines), data=cells)
