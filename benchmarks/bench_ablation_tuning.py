"""Tuning ablations the paper's tech report [27] covers and DESIGN.md
calls out: the grace-period length sweep and the eager/rendezvous
threshold.

* Grace sweep: longer grace periods measure better but delay the
  redistribution; the paper's default (5) should sit near the sweet
  spot for the Figure-4 Jacobi scenario.
* Eager threshold: halo rows (16 KiB at 2048 columns) flip between
  eager and rendezvous; the cycle time must not degrade wildly either
  way (the sender-blocking cost of rendezvous is overlapped by the
  apps' compute).
"""

from dataclasses import replace

import pytest

from repro.apps import JacobiConfig, jacobi_program
from repro.config import RuntimeSpec, pentium_cluster
from repro.experiments.harness import Scenario, bench_scale, scaled, scaled_spec
from repro.experiments.report import format_table
from repro.simcluster import single_competitor

DEFAULT_SCALE = 0.5


def run_jacobi(spec, *, scale, cluster_spec=None, iters_mult=1.0):
    cfg = JacobiConfig(n=scaled(2048, scale, 64),
                       iters=scaled(int(250 * iters_mult), scale, 30),
                       materialized=False)
    return Scenario(
        name="ablation",
        cluster_spec=cluster_spec or pentium_cluster(4),
        program=jacobi_program,
        cfg=cfg,
        spec=spec,
        adaptive=True,
        load_script=single_competitor(0, start_cycle=10),
    ).run()


def test_grace_period_sweep(benchmark, record_table):
    scale = bench_scale(DEFAULT_SCALE)

    def sweep():
        out = {}
        for gp in (1, 3, 5, 8):
            spec = scaled_spec(RuntimeSpec(grace_period=gp,
                                           allow_removal=False), scale)
            out[gp] = run_jacobi(spec, scale=scale)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(gp, res.wall_time, res.n_redistributions)
            for gp, res in sorted(results.items())]
    record_table("ablation_grace", format_table(
        ["grace cycles", "total(s)", "#redist"], rows,
        title="Ablation — grace period length (Jacobi, 4 nodes, 1 CP)",
    ), data=[dict(zip(("grace_cycles", "total_s", "n_redist"), r))
             for r in rows])
    times = {gp: res.wall_time for gp, res in results.items()}
    # every configuration adapts, and no sane grace period is a
    # catastrophe relative to the paper default
    assert all(res.n_redistributions >= 1 for res in results.values())
    for gp, t in times.items():
        assert t < times[5] * 1.35, f"GP={gp} pathologically slow"


def test_eager_threshold_sweep(benchmark, record_table):
    scale = bench_scale(DEFAULT_SCALE)
    base = pentium_cluster(4)

    def sweep():
        out = {}
        for eager in (0, 16 * 1024, 1 << 22):
            cluster_spec = replace(
                base, network=replace(base.network, eager_threshold=eager))
            spec = scaled_spec(RuntimeSpec(allow_removal=False), scale)
            out[eager] = run_jacobi(spec, scale=scale,
                                    cluster_spec=cluster_spec,
                                    iters_mult=0.4)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(eager, res.wall_time, res.n_redistributions)
            for eager, res in sorted(results.items())]
    record_table("ablation_eager", format_table(
        ["eager threshold(B)", "total(s)", "#redist"], rows,
        title="Ablation — eager/rendezvous threshold (Jacobi, 4 nodes)",
    ), data=[dict(zip(("eager_threshold_b", "total_s", "n_redist"), r))
             for r in rows])
    times = [res.wall_time for res in results.values()]
    assert max(times) < min(times) * 1.5
