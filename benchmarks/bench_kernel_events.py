"""Kernel event-throughput bench (dynkern).

Measures raw DES engine throughput (events/sec) over three workloads:

* ``churn`` — the watchdog re-arm pattern straight on the kernel API:
  per pump, every tick cancels the previous far-future watchdogs and
  arms fresh ones.  Every armed watchdog becomes a heap tombstone, so
  the reference engine's heap grows to pumps x ticks x watchdogs
  entries (20M+ at the 256 cell) while the calendar engine's
  compaction keeps it bounded — this is the O(log dead) vs O(1)
  cancel cost isolated from everything else, and the workload whose
  256-pump cell carries the dynkern >=5x acceptance gate.  The cell
  parameters are identical in smoke and full runs (only the grid
  shrinks), so ``check_kernel_regression.py`` can compare shared
  cells.  Budget note: the 256 cell spends minutes in the *reference*
  engine — that wall clock is the measurement.
* ``storm`` — one rank per node running a ring compute+sendrecv
  exchange, plus per-node timer-churn daemons that schedule and cancel
  far-future timers (the heartbeat/tombstone pattern).  This is a pure
  event-loop stress: zero-delay resumes, slice timers, NIC callbacks,
  signal wakeups and tombstoned cancels in realistic proportions.
* ``removal`` — the canonical Jacobi node-removal scenario
  (:mod:`repro.obs.scenario`) scaled up with the rank count, i.e. the
  whole runtime stack (balancing, redistribution, daemons, resilience).
  The 1024 cell runs a lighter recipe (fewer cycles, the
  ``daemon_interval`` knob at a realistic 1024-node cadence) and must
  finish in single-digit seconds on the calendar engine.

Each cell runs on both engines — ``calendar`` (the two-lane scheduler
in ``simcluster/kernel.py``) and ``reference`` (the original
single-heap loop preserved verbatim in
``simcluster/kernel_reference.py``) — selected via ``DYNMPI_KERNEL``.
Both engines must execute the identical event sequence, so each cell
asserts equal ``n_events`` before any throughput number counts; the
cell's ``speedup`` is the calendar/reference events-per-second ratio
on the same host, which is what ``check_kernel_regression.py`` gates
(machine-independent, same idiom as ``check_plan_regression.py``).

On a pre-dynkern tree (no engine switch) every cell runs once and is
labelled ``current`` — how the pre-PR baseline column in
``docs/PERFORMANCE.md`` was captured.

``DYNMPI_KERNEL_SMOKE=1`` restricts the grid to small cells and writes
``BENCH_kernel_events_smoke.json`` (instead of the checked-in
``BENCH_kernel_events.json`` full-grid baseline).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.obs.scenario import RemovalScenario, run_removal
from repro.simcluster import Cluster, Compute, Sleep
from repro.mpi import run_spmd

SMOKE = os.environ.get("DYNMPI_KERNEL_SMOKE", "") not in ("", "0")

CHURN_GRID = (16,) if SMOKE else (16, 64, 256)
STORM_GRID = (16, 64) if SMOKE else (16, 64, 256, 1024)
REMOVAL_GRID = (16,) if SMOKE else (16, 64, 256, 1024)
#: rank count above which the reference engine is skipped for the
#: removal workload (minutes of wall clock for a known-equal sequence;
#: the equivalence suite already covers both engines at small scale)
REMOVAL_REF_LIMIT = 256

#: churn cell shape — fixed across smoke and full so the regression
#: gate compares like with like.  ticks=5000 is what makes the
#: reference heap deep (pumps x ticks x watchdogs tombstones): the
#: log-factor being gated only shows at depth
CHURN_TICKS = 5_000
CHURN_WATCHDOGS = 16
CHURN_TICK_DT = 1e-4
CHURN_WATCHDOG_TIMEOUT = 1e6

#: total ring exchanges per storm cell, split across the ranks
STORM_SENDRECVS = 6_000 if SMOKE else 25_000
#: per-round compute in work units (~20 us at the default node speed)
STORM_WORK = 2_000.0
#: timer-churn daemons: beats per node and far-future timers per beat
CHURN_PERIOD = 0.0005
CHURN_TIMERS = 4

#: engines under test; resolved through DYNMPI_KERNEL so the same
#: bench runs on trees that predate the engine switch
ENGINES = ("reference", "calendar")


def _engines_available() -> bool:
    return "kernel" in getattr(ClusterSpec, "__dataclass_fields__", {})


@dataclass
class KernelCell:
    workload: str
    n_nodes: int
    engine: str
    events: int
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")


def _noop() -> None:
    return None


def _make_kernel_sim():
    """A bare simulator honoring ``DYNMPI_KERNEL`` (pre-dynkern trees
    have no factory — fall back to the only engine there is)."""
    try:
        from repro.simcluster.kernel import make_simulator
    except ImportError:
        make_simulator = None
    if make_simulator is not None:
        return make_simulator()
    from repro.simcluster import Simulator
    return Simulator()


def _churn_once(n_pumps: int) -> tuple[int, float]:
    sim = _make_kernel_sim()
    watchdogs: list[Optional[list]] = [None] * n_pumps

    def make_pump(i: int):
        remaining = [CHURN_TICKS]

        def fire() -> None:
            return None

        def tick() -> None:
            old = watchdogs[i]
            if old is not None:
                for t in old:
                    t.cancel()
            watchdogs[i] = [sim.schedule(CHURN_WATCHDOG_TIMEOUT, fire)
                            for _ in range(CHURN_WATCHDOGS)]
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(CHURN_TICK_DT, tick)

        return tick

    # stagger the pumps inside one tick period so their re-arms
    # interleave instead of batching
    for i in range(n_pumps):
        sim.schedule(CHURN_TICK_DT * (i / n_pumps), make_pump(i))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim.n_events, wall


def _ring_program(ep, rounds: int, work: float):
    n = ep.size
    right = (ep.rank + 1) % n
    left = (ep.rank - 1) % n
    for _ in range(rounds):
        yield Compute(work)
        yield from ep.sendrecv(right, 5, None, left, 5)
    return None


def _churn_daemon(sim, beats: int):
    """Heartbeat-style timer churn: arm far-future timers, cancel them
    a beat later — every armed timer becomes a heap tombstone."""
    for _ in range(beats):
        timers = [sim.schedule(1_000.0, _noop) for _ in range(CHURN_TIMERS)]
        yield Sleep(CHURN_PERIOD)
        for t in timers:
            t.cancel()
    return None


def _run_engine(engine: Optional[str], fn):
    """Run ``fn()`` with DYNMPI_KERNEL pinned to ``engine``."""
    prev = os.environ.get("DYNMPI_KERNEL")
    try:
        if engine is None:
            os.environ.pop("DYNMPI_KERNEL", None)
        else:
            os.environ["DYNMPI_KERNEL"] = engine
        return fn()
    finally:
        if prev is None:
            os.environ.pop("DYNMPI_KERNEL", None)
        else:
            os.environ["DYNMPI_KERNEL"] = prev


def _storm_once(n_nodes: int) -> tuple[int, float]:
    spec = ClusterSpec(
        n_nodes=n_nodes, node=NodeSpec(), network=NetworkSpec(),
        seed=0, name="storm", observe=False,
    )
    cluster = Cluster(spec)
    rounds = max(8, STORM_SENDRECVS // n_nodes)
    beats = min(rounds, 400)
    for _ in range(n_nodes):
        cluster.sim.spawn(_churn_daemon(cluster.sim, beats),
                          name="churn", daemon=True)
    t0 = time.perf_counter()
    run_spmd(cluster, _ring_program, args=(rounds, STORM_WORK))
    wall = time.perf_counter() - t0
    return cluster.sim.n_events, wall


def _removal_once(n_nodes: int) -> tuple[int, float]:
    if n_nodes >= 1024:
        # the single-digit-seconds acceptance cell: fewer cycles and
        # the daemon_interval knob at a cadence that scales to 1024
        # nodes (daemon beats are O(n log n) events each; the smoke
        # cadence would be nothing but daemon traffic at this size)
        kwargs = dict(n_nodes=n_nodes, n=4 * n_nodes, iters=2,
                      load_cycle=1, n_cp=1)
        if "daemon_interval" in RemovalScenario.__dataclass_fields__:
            kwargs["daemon_interval"] = 0.01  # pre-dynkern trees lack it
        scenario = RemovalScenario(**kwargs)
    else:
        scenario = RemovalScenario(
            n_nodes=n_nodes, n=4 * n_nodes, iters=8, load_cycle=2, n_cp=2,
        )
    t0 = time.perf_counter()
    _, cluster = run_removal(scenario, observe=False)
    wall = time.perf_counter() - t0
    return cluster.sim.n_events, wall


def _measure(workload: str, n_nodes: int, once) -> list[KernelCell]:
    if not _engines_available():
        events, wall = once(n_nodes)
        return [KernelCell(workload, n_nodes, "current", events, wall)]
    cells = []
    for engine in ENGINES:
        if (workload == "removal" and engine == "reference"
                and n_nodes > REMOVAL_REF_LIMIT):
            continue  # skipped: reported as a missing reference row
        events, wall = _run_engine(engine, lambda: once(n_nodes))
        cells.append(KernelCell(workload, n_nodes, engine, events, wall))
    by_engine = {c.engine: c.events for c in cells}
    if len(by_engine) == 2:
        assert by_engine["calendar"] == by_engine["reference"], (
            workload, n_nodes, by_engine)
    return cells


def _format(cells: list[KernelCell]) -> str:
    head = (f"{'workload':>8} {'n_nodes':>7} {'engine':>9} "
            f"{'events':>10} {'wall_s':>9} {'events/s':>11} {'speedup':>8}")
    lines = ["kernel event throughput (speedup = calendar/reference "
             "events-per-sec on this host)", head, "-" * len(head)]
    ref = {(c.workload, c.n_nodes): c.events_per_sec
           for c in cells if c.engine == "reference"}
    for c in cells:
        base = ref.get((c.workload, c.n_nodes))
        speedup = (f"{c.events_per_sec / base:>7.1f}x"
                   if base and c.engine == "calendar" else f"{'-':>8}")
        lines.append(
            f"{c.workload:>8} {c.n_nodes:>7} {c.engine:>9} "
            f"{c.events:>10} {c.wall_s:>9.3f} {c.events_per_sec:>11.0f} "
            f"{speedup}"
        )
    return "\n".join(lines)


def test_kernel_events(record_table):
    cells: list[KernelCell] = []
    for n in CHURN_GRID:
        cells.extend(_measure("churn", n, _churn_once))
    for n in STORM_GRID:
        cells.extend(_measure("storm", n, _storm_once))
    for n in REMOVAL_GRID:
        cells.extend(_measure("removal", n, _removal_once))

    data = [
        {**c.__dict__, "events_per_sec": c.events_per_sec} for c in cells
    ]
    name = "kernel_events_smoke" if SMOKE else "kernel_events"
    record_table(name, _format(cells), data=data)

    if not _engines_available():
        return  # pre-dynkern tree: capture only, nothing to gate
    by_cell = {(c.workload, c.n_nodes, c.engine): c for c in cells}
    for (workload, n_nodes, engine), c in by_cell.items():
        if engine != "calendar":
            continue
        ref = by_cell.get((workload, n_nodes, "reference"))
        if ref is not None:
            # loose in-run sanity (small cells jitter on a busy host);
            # the real floor is check_kernel_regression.py's ratio gate
            assert c.events_per_sec > 0.7 * ref.events_per_sec, (
                workload, n_nodes)
    if not SMOKE:
        # the dynkern acceptance bar: >=5x at the 256-pump churn cell
        # (tombstone cancel cost isolated — where the engine rebuild
        # lives), and the 1024-rank removal scenario in single-digit
        # seconds
        churn256 = by_cell[("churn", 256, "calendar")]
        ref256 = by_cell[("churn", 256, "reference")]
        assert churn256.events_per_sec >= 5.0 * ref256.events_per_sec, (
            churn256.events_per_sec, ref256.events_per_sec)
        assert by_cell[("removal", 1024, "calendar")].wall_s < 10.0
