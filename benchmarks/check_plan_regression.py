"""Perf-smoke gate for the interval data plane.

Compares a fresh ``DYNMPI_PLAN_SMOKE=1`` run of
``bench_plan_scaling.py`` (which writes
``results/BENCH_plan_scaling_smoke.json``) against the checked-in
full-grid baseline ``results/BENCH_plan_scaling.json`` at the shared
grid cell, and fails when the measured speedup falls below half the
baseline's — i.e. when plan build + pack regressed by more than 2x
relative to the set oracle.  Gating on the old/new *ratio* rather than
wall-clock keeps the check machine-independent: both paths run on the
same host, so a slow CI runner scales numerator and denominator alike.

Usage (what the CI perf-smoke job runs)::

    DYNMPI_PLAN_SMOKE=1 python -m pytest benchmarks/bench_plan_scaling.py -q
    python benchmarks/check_plan_regression.py
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS / "BENCH_plan_scaling.json"
SMOKE = RESULTS / "BENCH_plan_scaling_smoke.json"
ALLOWED_REGRESSION = 2.0


def _speedups(path: pathlib.Path) -> dict:
    cells = json.loads(path.read_text())["data"]
    return {(c["n"], c["ranks"]): c["speedup"] for c in cells}


def main() -> int:
    for path in (BASELINE, SMOKE):
        if not path.exists():
            print(f"plan-regression: missing {path}", file=sys.stderr)
            return 2
    baseline = _speedups(BASELINE)
    smoke = _speedups(SMOKE)
    shared = sorted(set(baseline) & set(smoke))
    if not shared:
        print("plan-regression: no shared grid cells between baseline "
              "and smoke run", file=sys.stderr)
        return 2
    failed = False
    for cell in shared:
        floor = baseline[cell] / ALLOWED_REGRESSION
        status = "ok" if smoke[cell] >= floor else "REGRESSED"
        failed |= status == "REGRESSED"
        n, ranks = cell
        print(f"plan-regression: n={n} ranks={ranks} "
              f"speedup {smoke[cell]:.1f}x vs baseline {baseline[cell]:.1f}x "
              f"(floor {floor:.1f}x) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
