"""Fault-recovery overhead bench (the resilience acceptance number).

A crash recovery is an involuntary Section 4.4 removal: the buddy
replays the dead rank's rows from its in-memory checkpoint and one
redistribution rebalances the survivors.  The claim to hold: its
one-time cost is the same order of magnitude as the voluntary
load-triggered redistribution the paper already pays, and the
per-cycle checkpointing tax is a modest multiplier on the cycle time.
"""

import numpy as np
import pytest

from repro.apps import JacobiConfig, jacobi_program, run_program
from repro.config import (
    ClusterSpec, NetworkSpec, NodeSpec, ResilienceSpec, RuntimeSpec,
)
from repro.experiments.report import format_table
from repro.resilience import node_crash
from repro.simcluster import Cluster, single_competitor

N = 256
ITERS = 60


def make_cluster():
    return Cluster(ClusterSpec(
        n_nodes=4,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
    ))


def base_spec(resilience=None):
    return RuntimeSpec(
        grace_period=2, post_redist_period=3,
        allow_removal=True, drop_mode="physical",
        daemon_interval=0.001, resilience=resilience,
    )


def run_crash():
    cluster = make_cluster()
    cluster.install_failure_script(node_crash(1, at_cycle=15))
    return run_program(
        cluster, jacobi_program,
        JacobiConfig(n=N, iters=ITERS, materialized=True),
        spec=base_spec(ResilienceSpec(heartbeat_timeout=0.02)),
    )


def run_voluntary():
    cluster = make_cluster()
    return run_program(
        cluster, jacobi_program,
        JacobiConfig(n=N, iters=ITERS, materialized=True),
        spec=base_spec(),
        load_script=single_competitor(1, start_cycle=15, count=3),
    )


def run_clean(resilience=None):
    cluster = make_cluster()
    return run_program(
        cluster, jacobi_program,
        JacobiConfig(n=N, iters=ITERS, materialized=True),
        spec=base_spec(resilience),
    )


def _mean_cycle(res):
    times = [np.mean(ts) for ts in res.cycle_times if ts]
    return float(np.mean(times))


def test_fault_recovery_overhead(benchmark, record_table):
    def run_all():
        return {
            "crash": run_crash(),
            "voluntary": run_voluntary(),
            "clean": run_clean(),
            "clean_ckpt1": run_clean(ResilienceSpec(heartbeat_timeout=10.0)),
            "clean_ckpt10": run_clean(ResilienceSpec(
                checkpoint_interval=10, heartbeat_timeout=10.0)),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    recovery = [ev for ev in results["crash"].events
                if ev.kind == "crash_recovery"]
    assert len(recovery) == 1, "the injected crash must be recovered once"
    t_recovery = recovery[0].duration

    voluntary = [ev for ev in results["voluntary"].events
                 if ev.kind == "redistribute"]
    assert voluntary, "the competing process must trigger a redistribution"
    t_voluntary = max(ev.duration for ev in voluntary)

    base = _mean_cycle(results["clean"])
    tax1 = _mean_cycle(results["clean_ckpt1"]) / base
    tax10 = _mean_cycle(results["clean_ckpt10"]) / base

    rows = [
        ("crash recovery", t_recovery * 1e3,
         f"cycle {recovery[0].cycle}, replayed "
         f"{recovery[0].detail.get('replayed_installs', 0)} rows"),
        ("voluntary redistribution", t_voluntary * 1e3,
         f"{len(voluntary)} redistribution(s)"),
        ("checkpoint tax, interval=1", (tax1 - 1) * 100,
         "percent added to the mean cycle"),
        ("checkpoint tax, interval=10", (tax10 - 1) * 100,
         "percent added to the mean cycle"),
    ]
    record_table("fault_recovery", format_table(
        ["path", "cost", "notes"], rows,
        title="Resilience — crash recovery vs voluntary removal "
              f"(Jacobi {N}x{N}, 4 nodes)",
    ), data={
        "recovery_s": t_recovery,
        "voluntary_redist_s": t_voluntary,
        "recovery_over_voluntary": t_recovery / t_voluntary,
        "checkpoint_cycle_multiplier_interval1": tax1,
        "checkpoint_cycle_multiplier_interval10": tax10,
        "crash_events": [ev.kind for ev in results["crash"].events],
    })

    # the acceptance bar: recovery costs the same order of magnitude as
    # the voluntary Section 4.4 path (it is the same redistribution
    # machinery plus a local checkpoint replay)
    assert t_recovery / t_voluntary < 10.0, (
        f"recovery {t_recovery:.4f}s vs voluntary {t_voluntary:.4f}s"
    )
    # the per-cycle tax amortizes with the interval: at interval=10 the
    # replica traffic adds a bounded fraction of the cycle (interval=1
    # buys bitwise single-cycle recovery and is priced accordingly)
    assert tax10 < tax1, "a longer interval must cost less"
    assert tax10 < 4.0, f"interval-10 checkpointing {tax10:.2f}x the cycle"
