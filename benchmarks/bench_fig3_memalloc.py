"""Figure 3 bench — projection vs contiguous allocation.

Regenerates the quantitative comparison behind the paper's Figure 3:
memory traffic and modeled cost of both layouts across a sweep of
partition-boundary shifts, for dense and sparse matrices.
"""

import pytest

from repro.experiments import format_memalloc, run_memalloc
from repro.experiments.harness import bench_scale


def test_fig3_memalloc(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_memalloc(scale=bench_scale()),
        rounds=1, iterations=1,
    )
    record_table("fig3_memalloc", format_memalloc(rows), data=rows)
    dense = [r for r in rows if r.kind == "dense"]
    # the paper's claim must hold everywhere: projection never moves
    # more bytes than contiguous
    for r in rows:
        assert r.proj_bytes_copied <= r.cont_bytes_copied
        assert r.proj_bytes_alloc <= r.cont_bytes_alloc
    # and for small shifts the work gap is large
    assert dense[0].work_ratio > 10
