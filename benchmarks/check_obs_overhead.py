"""CI gate: dynscope must be free when disabled and pure when enabled.

Runs the Figure 4 Jacobi cell (the bench the paper's headline numbers
come from) in three guises and applies two checks:

1. **Baseline drift** — with observability off (the default), the
   simulated times must match the checked-in baseline
   ``results/BENCH_fig4_obs_baseline.json`` within
   ``ALLOWED_OVERHEAD``.  The simulator is deterministic, so any
   drift means instrumentation leaked *simulated* cost into the
   model — the regression this gate exists to catch.  Gating on
   simulated rather than host time keeps the check machine-
   independent (same reasoning as ``check_plan_regression.py``).

2. **Observer purity** — re-running the identical cell with
   ``DYNMPI_OBS=1`` must produce byte-for-byte equal simulated times.
   Recording may cost host time, but it must never move the model.

The host-time ratio between the two runs is printed for information
(it is the "obs-disabled overhead" in human terms) but not gated:
wall-clock on a shared CI runner is noise.

Usage (what the CI obs-smoke job runs)::

    python benchmarks/check_obs_overhead.py
    python benchmarks/check_obs_overhead.py --write-baseline  # refresh
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

RESULTS = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS / "BENCH_fig4_obs_baseline.json"

#: relative simulated-time drift tolerated against the baseline
ALLOWED_OVERHEAD = 0.03

#: the measured cell: Figure 4, Jacobi, smoke scale
SCALE = 0.35
NODES = (2, 4)


def _run_cell() -> tuple[list[dict], float]:
    """One obs-state run of the cell; returns (rows, host_seconds)."""
    from repro.experiments import run_figure4

    t0 = time.perf_counter()
    rows = run_figure4(apps=("jacobi",), nodes=NODES, scale=SCALE)
    elapsed = time.perf_counter() - t0
    return [
        {"app": r.app, "n_nodes": r.n_nodes, "t_dedicated": r.t_dedicated,
         "t_noadapt": r.t_noadapt, "t_dynmpi": r.t_dynmpi}
        for r in rows
    ], elapsed


def _with_obs(enabled: bool) -> tuple[list[dict], float]:
    old = os.environ.get("DYNMPI_OBS")
    os.environ["DYNMPI_OBS"] = "1" if enabled else "0"
    try:
        return _run_cell()
    finally:
        if old is None:
            del os.environ["DYNMPI_OBS"]
        else:
            os.environ["DYNMPI_OBS"] = old


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"regenerate {BASELINE.name} and exit")
    args = parser.parse_args(argv)

    rows_off, host_off = _with_obs(False)
    if args.write_baseline:
        RESULTS.mkdir(exist_ok=True)
        BASELINE.write_text(json.dumps(
            {"name": "fig4_obs_baseline", "scale": SCALE,
             "nodes": list(NODES), "rows": rows_off},
            indent=2, sort_keys=True) + "\n")
        print(f"obs-overhead: baseline written to {BASELINE}")
        return 0

    if not BASELINE.exists():
        print(f"obs-overhead: missing {BASELINE} "
              f"(run with --write-baseline)", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE.read_text())
    if baseline.get("scale") != SCALE or tuple(baseline.get("nodes", ())) \
            != NODES:
        print("obs-overhead: baseline cell does not match this script's "
              "(scale, nodes); refresh with --write-baseline",
              file=sys.stderr)
        return 2

    failed = False
    for got, want in zip(rows_off, baseline["rows"]):
        for key in ("t_dedicated", "t_noadapt", "t_dynmpi"):
            drift = abs(got[key] - want[key]) / want[key]
            status = "ok" if drift <= ALLOWED_OVERHEAD else "REGRESSED"
            failed |= status == "REGRESSED"
            print(f"obs-overhead: {got['app']} n={got['n_nodes']} {key} "
                  f"{got[key]:.4f}s vs baseline {want[key]:.4f}s "
                  f"(drift {drift * 100:.2f}%, max "
                  f"{ALLOWED_OVERHEAD * 100:.0f}%) {status}")

    rows_on, host_on = _with_obs(True)
    if rows_on != rows_off:
        print("obs-overhead: PURITY VIOLATION — enabling DYNMPI_OBS "
              "changed simulated times:", file=sys.stderr)
        for a, b in zip(rows_off, rows_on):
            if a != b:
                print(f"  off={a}\n  on ={b}", file=sys.stderr)
        failed = True
    else:
        print("obs-overhead: purity ok (obs on/off simulated times "
              "identical)")
    print(f"obs-overhead: host time off={host_off:.2f}s on={host_on:.2f}s "
          f"(recording cost {(host_on / host_off - 1) * 100:+.1f}%, "
          f"informational)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
