"""Figure 7 bench — grace period length with sub-10 ms iterations.

Particle simulation, 8 nodes, Part in {10, 50}; grace period 1 vs 5.
Shape assertions: iteration timing uses gethrtime (not /PROC), and the
5-cycle grace period produces a distribution at least as good as the
1-cycle one (the paper: 13-16% better).
"""

import pytest

from repro.experiments import format_figure7, run_figure7
from repro.experiments.harness import bench_scale

DEFAULT_SCALE = 1.0


def test_fig7_graceperiod(benchmark, record_table):
    cells = benchmark.pedantic(
        lambda: run_figure7(scale=bench_scale(DEFAULT_SCALE)),
        rounds=1, iterations=1,
    )
    record_table("fig7_graceperiod", format_figure7(cells), data=cells)
    by = {(c.part, c.grace_period): c for c in cells}
    for part in (10.0, 50.0):
        gp1, gp5 = by[(part, 1)], by[(part, 5)]
        # sub-10ms iterations force the wallclock timer
        assert gp5.estimate_source == "hrtimer"
        # GP=5 must not lose to GP=1, and should win for the heavier
        # imbalance
        assert gp5.cycle_time <= gp1.cycle_time * 1.02
    assert by[(50.0, 5)].cycle_time < by[(50.0, 1)].cycle_time
