"""Figure 4 bench — overall results: 4 apps x {2,4,8} nodes,
dedicated vs no-adapt vs Dyn-MPI (one competing process on node 0 at
the 10th iteration).

Shape assertions (the paper's findings):
* no-adapt is substantially slower than dedicated,
* Dyn-MPI lands between dedicated and no-adapt,
* the particle simulation's Dyn-MPI run can beat its dedicated run
  (adaptation also fixes the built-in imbalance).
"""

import pytest

from repro.experiments import cg_4node_narrative, format_figure4, run_figure4
from repro.experiments.harness import bench_scale
from repro.experiments.report import format_table

#: default scale: half linear size keeps the full 36-run sweep around a
#: minute while preserving every shape; set DYNMPI_BENCH_SCALE=1 for
#: paper-size runs (see EXPERIMENTS.md for recorded full-scale output)
DEFAULT_SCALE = 0.5


def _scale() -> float:
    return bench_scale(DEFAULT_SCALE)


@pytest.mark.parametrize("app", ["jacobi", "sor", "cg", "particle"])
def test_fig4_app(app, benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_figure4(apps=(app,), scale=_scale()),
        rounds=1, iterations=1,
    )
    record_table(f"fig4_{app}", format_figure4(rows), data=rows)
    for r in rows:
        # no-adapt suffers from the competing process
        assert r.norm_noadapt > 1.25, f"{r}"
        # Dyn-MPI beats no adaptation
        assert r.t_dynmpi < r.t_noadapt, f"{r}"
    if app != "particle":
        # and stays within reach of the dedicated run
        for r in rows:
            assert r.norm_dynmpi < r.norm_noadapt


def test_fig4_cg_narrative(benchmark, record_table):
    """Section 5.1's 4-node CG walkthrough: time triple, the found
    distribution (paper: 2/7 per unloaded node, 1/7 loaded), and the
    redistribution overhead (paper: ~1 s)."""
    n = benchmark.pedantic(
        lambda: cg_4node_narrative(scale=_scale()), rounds=1, iterations=1
    )
    table = format_table(
        ["dedicated(s)", "no-adapt(s)", "dyn-mpi(s)", "shares", "redist(s)"],
        [(n.t_dedicated, n.t_noadapt, n.t_dynmpi,
          "/".join(f"{s:.3f}" for s in n.shares), n.redist_seconds)],
        title="Section 5.1 — 4-node CG narrative",
    )
    record_table("fig4_cg_narrative", table, data=n)
    assert n.t_dedicated < n.t_dynmpi < n.t_noadapt
    # the loaded node's share is near 1/7, each unloaded near 2/7
    assert len(n.shares) == 4
    assert n.shares[0] == pytest.approx(1 / 7, abs=0.06)
    for s in n.shares[1:]:
        assert s == pytest.approx(2 / 7, abs=0.06)
