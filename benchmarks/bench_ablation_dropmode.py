"""Ablation bench — physical vs logical dropping (Section 2.2).

The paper asserts "the performance difference between logical and
physical dropping can be significant" because a logically dropped node
keeps its rank by holding a minimal amount of data, which keeps it in
every halo exchange and collective.  This bench measures both policies
on the SOR removal scenario.
"""

import pytest

from repro.apps import SORConfig, sor_program
from repro.config import RuntimeSpec, ultrasparc_cluster
from repro.experiments.harness import (
    Scenario,
    bench_scale,
    scaled,
    scaled_spec,
    steady_state_cycle_time,
)
from repro.experiments.report import format_table
from repro.simcluster import single_competitor

DEFAULT_SCALE = 1.0


def run_drop_mode(mode: str, *, n_nodes=16, n_cp=3, scale=None):
    scale = bench_scale(DEFAULT_SCALE) if scale is None else scale
    cfg = SORConfig(n=scaled(1024, scale, 64), iters=scaled(250, scale, 60),
                    materialized=False)
    spec = scaled_spec(RuntimeSpec(
        allow_removal=True, drop_mode=mode, drop_margin=1e-9,
        post_redist_period=5,
    ), scale)
    return Scenario(
        name=f"dropmode:{mode}",
        cluster_spec=ultrasparc_cluster(n_nodes),
        program=sor_program,
        cfg=cfg,
        spec=spec,
        adaptive=True,
        load_script=single_competitor(0, start_cycle=10, count=n_cp),
    ).run()


def test_physical_vs_logical_drop(benchmark, record_table):
    def run_both():
        return {mode: run_drop_mode(mode) for mode in ("physical", "logical")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    phys = steady_state_cycle_time(results["physical"])
    logi = steady_state_cycle_time(results["logical"])
    table = format_table(
        ["policy", "steady cycle(ms)", "events"],
        [
            ("physical", phys * 1e3,
             ";".join(ev.kind for ev in results["physical"].events)),
            ("logical", logi * 1e3,
             ";".join(ev.kind for ev in results["logical"].events)),
        ],
        title="Ablation — physical vs logical dropping (SOR, 16 nodes, 3 CPs)",
    )
    record_table("ablation_dropmode", table, data={
        mode: {"steady_cycle_ms": v * 1e3,
               "events": [ev.kind for ev in results[mode].events]}
        for mode, v in (("physical", phys), ("logical", logi))
    })
    assert any(ev.kind == "drop" for ev in results["physical"].events)
    assert any(ev.kind == "logical_drop" for ev in results["logical"].events)
    # the paper's claim: physical dropping is the faster policy
    assert phys <= logi * 1.02
