"""Shared fixtures for the figure/table benches.

Every bench honors ``DYNMPI_BENCH_SCALE`` (0 < s <= 1, default is the
per-bench default scale) and writes its rendered table both to stdout
and to ``benchmarks/results/<name>.txt`` so results survive pytest's
capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True, scope="session")
def _sanitizer_must_be_off():
    """Benchmark numbers must come from unsanitized runs.

    The dynsan runtime sanitizer (docs/ANALYSIS.md) is strictly opt-in;
    a stray ``DYNMPI_SANITIZE`` in the environment would silently add
    per-message bookkeeping to every figure/table bench.  Fail loudly
    instead of publishing polluted timings.
    """
    from repro.analysis import sanitizer_enabled

    assert not sanitizer_enabled(object()), (
        "DYNMPI_SANITIZE is set: the communication sanitizer would skew "
        "benchmark timings — unset it before running benches"
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    def _record(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n")
        print()
        print(table)
        print(f"[written to {path}]")
    return _record
