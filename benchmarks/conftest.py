"""Shared fixtures for the figure/table benches.

Every bench honors ``DYNMPI_BENCH_SCALE`` (0 < s <= 1, default is the
per-bench default scale) and writes its rendered table both to stdout
and to ``benchmarks/results/<name>.txt`` so results survive pytest's
capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    def _record(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n")
        print()
        print(table)
        print(f"[written to {path}]")
    return _record
