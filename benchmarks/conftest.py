"""Shared fixtures for the figure/table benches.

Every bench honors ``DYNMPI_BENCH_SCALE`` (0 < s <= 1, default is the
per-bench default scale) and writes its rendered table both to stdout
and to ``benchmarks/results/<name>.txt`` so results survive pytest's
capture.

The machine-readable ``BENCH_<name>.json`` sidecars are serialized
through :mod:`repro.campaign.results` — the same code path the
campaign engine's aggregates use — so the format has exactly one
definition.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.campaign.results import render_bench_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _obs_summary():
    """Cost-attribution summaries of every live dynscope recorder —
    attached to BENCH json sidecars so a traced bench run
    (``DYNMPI_OBS=1``) carries its own per-phase breakdown.  Untraced
    runs (the default) have no enabled recorders and pay nothing."""
    from repro.obs import session_recorders
    from repro.obs.report import attribute

    summaries = []
    for rec in session_recorders():
        if not rec.events:
            continue
        report = attribute(e.to_dict() for e in rec.sorted_events())
        summaries.append({
            "n_events": len(rec.events),
            "wall": report["wall"],
            "phases": report["total"],
            "adaptations": report["adaptations"],
        })
    return summaries or None


@pytest.fixture(autouse=True, scope="session")
def _sanitizer_must_be_off():
    """Benchmark numbers must come from unsanitized runs.

    The dynsan runtime sanitizer (docs/ANALYSIS.md) is strictly opt-in;
    a stray ``DYNMPI_SANITIZE`` in the environment would silently add
    per-message bookkeeping to every figure/table bench.  Fail loudly
    instead of publishing polluted timings.
    """
    from repro.analysis import sanitizer_enabled

    assert not sanitizer_enabled(object()), (
        "DYNMPI_SANITIZE is set: the communication sanitizer would skew "
        "benchmark timings — unset it before running benches"
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Write the rendered table to ``results/<name>.txt``; when ``data``
    is given, also emit the underlying numbers machine-readably to
    ``results/BENCH_<name>.json`` (one JSON per figure/table, for
    plotting and regression tooling that must not scrape text)."""
    def _record(name: str, table: str, data=None) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n")
        print()
        print(table)
        print(f"[written to {path}]")
        if data is not None:
            jpath = results_dir / f"BENCH_{name}.json"
            jpath.write_text(render_bench_json(name, data, _obs_summary()))
            print(f"[data written to {jpath}]")
    return _record
