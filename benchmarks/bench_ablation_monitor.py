"""Ablation bench — dmpi_ps vs vmstat (Section 4.2's motivation).

An application that blocks at receives for most of each cycle; vmstat
samples taken while it is blocked miss it, so its load readings are
unusable, while dmpi_ps (running/ready + monitored app always counted)
detects the competing process at its first post-arrival sample.
"""

import math

import pytest

from repro.experiments import format_monitor_ablation, run_monitor_ablation


def test_monitor_ablation(benchmark, record_table):
    rows = benchmark.pedantic(run_monitor_ablation, rounds=1, iterations=1)
    record_table("ablation_monitor", format_monitor_ablation(rows), data=rows)
    by = {r.monitor: r for r in rows}
    # dmpi_ps detects at its first sample after the CP appears
    assert by["dmpi_ps"].detection_delay <= 1.0
    assert by["dmpi_ps"].missed_samples == 0
    # vmstat keeps under-reporting while the app is blocked
    assert by["vmstat"].missed_samples > 0
