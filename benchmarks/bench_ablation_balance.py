"""Ablation bench — successive balancing vs naive relative power
(the Section 4.3 / tech-report [27] comparison).

Two parts:

* predicted cycle times across a computation:communication sweep
  (the model's view);
* an end-to-end simulated Jacobi run with the balancer swapped for the
  naive rule, confirming the comm-aware distribution is no slower.
"""

import numpy as np
import pytest

from repro.experiments import (
    format_balance_ablation,
    run_balance_ablation,
)


def test_balance_ablation_predictions(benchmark, record_table):
    rows = benchmark.pedantic(run_balance_ablation, rounds=1, iterations=1)
    record_table("ablation_balance", format_balance_ablation(rows), data=rows)
    # the comm-aware solution never loses, and its edge grows as
    # communication's share of the cycle grows
    gains = [r.gain for r in rows]
    assert all(g >= -1e-9 for g in gains)
    assert gains[-1] > gains[0]


def test_balance_rounds_converge(benchmark):
    """Successive balancing terminates in a handful of rounds."""
    from repro.core import CommCostModel, NearestNeighbor, successive_balance

    model = CommCostModel(1e-5, 4e-9, 75e-6, 8e-8, 1e8)

    def run():
        return successive_balance(
            3e7,
            np.array([1e8, 1e8, 1e8, 1e8 / 3]),
            np.array([1, 1, 1, 3]),
            [NearestNeighbor(row_nbytes=16384)],
            model,
            n_rows=2048,
        )

    res = benchmark(run)
    assert res.rounds <= 10
    assert res.shares.sum() == pytest.approx(1.0)
