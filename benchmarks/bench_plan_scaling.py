"""Plan-build + pack scaling: interval plane vs the set oracle.

Times one full redistribution *plan derivation* (needed map + the
pairwise send rule) and one whole-block *pack* for the old per-row
implementation (:mod:`repro.core.reference`, kept verbatim) against the
interval plane (:mod:`repro.core.redistribute` + slab-backed
:class:`~repro.dmem.ProjectedArray`) over the grid

    n    in {2048, 8192, 16384}   (global rows)
    ranks in {4, 16, 64}

The old path walks rows — O(rows·ranks·arrays) — while the interval
path walks spans — O(ranks²·arrays·phases) — so the speedup must grow
with both axes; the acceptance bar is >= 10x at n=16384 / 64 ranks.

``DYNMPI_PLAN_SMOKE=1`` restricts the grid to its smallest cell and
writes ``BENCH_plan_scaling_smoke.json`` (instead of the checked-in
full-grid ``BENCH_plan_scaling.json``, which serves as the regression
baseline for ``check_plan_regression.py`` / the CI perf-smoke job).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.plancheck import accesses_to_phases
from repro.core import reference
from repro.core.drsd import DRSD, AccessMode
from repro.core.intervals import IntervalSet
from repro.core.redistribute import needed_map, plan_sends
from repro.dmem import ProjectedArray

GRID_N = (2048, 8192, 16384)
GRID_RANKS = (4, 16, 64)
ROW_ELEMS = 64          # 512 B rows: big enough that pack moves real data
REPS = 3                # take the best of REPS timings per cell

SMOKE = os.environ.get("DYNMPI_PLAN_SMOKE", "") not in ("", "0")


@dataclass
class PlanCell:
    n: int
    ranks: int
    old_plan_s: float
    new_plan_s: float
    old_pack_s: float
    new_pack_s: float
    rows_sent: int

    @property
    def speedup(self) -> float:
        return (self.old_plan_s + self.old_pack_s) / (
            self.new_plan_s + self.new_pack_s)


def _block_edges(n: int, weights) -> list:
    shares = np.asarray(weights, dtype=float)
    shares = shares / shares.sum()
    edges = np.zeros(len(shares) + 1, dtype=int)
    edges[1:] = np.cumsum(np.round(shares * n)).astype(int)
    edges[-1] = n
    return [
        None if edges[i] == edges[i + 1] else (int(edges[i]), int(edges[i + 1] - 1))
        for i in range(len(shares))
    ]


def _transition(n: int, ranks: int):
    """An even old split moving to a skewed one (what a load spike
    produces), plus the two-array halo/read phase set."""
    old_bounds = tuple(_block_edges(n, np.ones(ranks)))
    new_bounds = tuple(_block_edges(n, np.linspace(1.0, 2.0, ranks)))
    accesses = [
        DRSD("A", AccessMode.READWRITE, lo_off=-1, hi_off=1),
        DRSD("B", AccessMode.READ, lo_off=0, hi_off=0),
    ]
    phases = accesses_to_phases(accesses)
    array_rows = {"A": n, "B": n}
    return old_bounds, new_bounds, phases, array_rows


def _plan_old(old_bounds, new_bounds, phases, array_rows):
    needed = reference.needed_map_sets(phases, new_bounds, array_rows)
    return reference.plan_sends_sets(old_bounds, needed, list(array_rows))


def _plan_new(old_bounds, new_bounds, phases, array_rows):
    needed = needed_map(phases, new_bounds, array_rows)
    return plan_sends(old_bounds, needed, list(array_rows))


def _best_of(fn, reps=REPS):
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _measure_cell(n: int, ranks: int) -> PlanCell:
    old_bounds, new_bounds, phases, array_rows = _transition(n, ranks)
    old_plan_s, old_sends = _best_of(
        lambda: _plan_old(old_bounds, new_bounds, phases, array_rows))
    new_plan_s, new_sends = _best_of(
        lambda: _plan_new(old_bounds, new_bounds, phases, array_rows))

    # both derivations must agree row for row before timing counts
    assert set(old_sends) == set(new_sends)
    rows_sent = 0
    for key, entry in old_sends.items():
        for name, rows in entry.items():
            assert new_sends[key][name].to_rows() == rows, (key, name)
            rows_sent += len(rows)

    # pack rank 0's whole old block, both layouts
    own = IntervalSet.from_bounds(old_bounds[0])
    slab = ProjectedArray("slab", (n, ROW_ELEMS))
    slab.hold(own)
    rowdict = reference.RowDictStore(n, ROW_ELEMS)
    rowdict.hold(own.to_rows())
    old_pack_s, (pay_old, _) = _best_of(lambda: rowdict.pack(own.to_rows()))
    new_pack_s, (pay_new, _) = _best_of(lambda: slab.pack(own))
    assert pay_new.tobytes() == pay_old.tobytes()

    return PlanCell(n, ranks, old_plan_s, new_plan_s,
                    old_pack_s, new_pack_s, rows_sent)


def _format(cells) -> str:
    head = (f"{'n':>6} {'ranks':>5} {'old plan':>10} {'new plan':>10} "
            f"{'old pack':>10} {'new pack':>10} {'speedup':>8}")
    lines = ["plan-build + pack scaling (seconds, best of "
             f"{REPS}; speedup = old/new total)", head, "-" * len(head)]
    for c in cells:
        lines.append(
            f"{c.n:>6} {c.ranks:>5} {c.old_plan_s:>10.6f} "
            f"{c.new_plan_s:>10.6f} {c.old_pack_s:>10.6f} "
            f"{c.new_pack_s:>10.6f} {c.speedup:>7.1f}x"
        )
    return "\n".join(lines)


def test_plan_scaling(record_table):
    grid = [(GRID_N[0], GRID_RANKS[0])] if SMOKE else [
        (n, r) for n in GRID_N for r in GRID_RANKS
    ]
    cells = [_measure_cell(n, r) for n, r in grid]
    data = [
        {**c.__dict__, "speedup": c.speedup} for c in cells
    ]
    name = "plan_scaling_smoke" if SMOKE else "plan_scaling"
    record_table(name, _format(cells), data=data)
    for c in cells:
        assert c.speedup > 1.0, (c.n, c.ranks, c.speedup)
    if not SMOKE:
        top = cells[-1]
        assert top.n == 16384 and top.ranks == 64
        assert top.speedup >= 10.0, top.speedup
