"""Figure 6 bench — SOR node removal on the Ultra-Sparc cluster.

{8,16,32} nodes x {1,2,3} competing processes; average post-
redistribution cycle time with the loaded node kept vs physically
dropped.  Shape assertions: the benefit of dropping grows with the
node count (i.e. as the computation/communication ratio shrinks) and
with the number of competing processes; at 8 nodes dropping is at
best marginal.
"""

import numpy as np
import pytest

from repro.experiments import format_figure6, run_figure6
from repro.experiments.harness import bench_scale

DEFAULT_SCALE = 1.0  # 1024^2 is already modest; run the paper's size
ITERS = 120


def test_fig6_removal(benchmark, record_table):
    cells = benchmark.pedantic(
        lambda: run_figure6(scale=bench_scale(DEFAULT_SCALE), iters=ITERS),
        rounds=1, iterations=1,
    )
    record_table("fig6_removal", format_figure6(cells), data=cells)
    by = {(c.n_nodes, c.n_cp): c for c in cells}

    # every forced-drop run actually dropped the loaded node
    assert all(c.dropped for c in cells)

    # benefit grows with competing processes at 16 and 32 nodes
    for n in (16, 32):
        assert by[(n, 3)].drop_gain > by[(n, 1)].drop_gain

    # dropping is marginal at 8 nodes with one competing process
    assert by[(8, 1)].drop_gain < 0.10

    # and clearly worthwhile at 32 nodes with three
    assert by[(32, 3)].drop_gain > 0.15
