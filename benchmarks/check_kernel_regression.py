"""Perf-smoke gate for the dynkern event engine.

Compares a fresh ``DYNMPI_KERNEL_SMOKE=1`` run of
``bench_kernel_events.py`` (which writes
``results/BENCH_kernel_events_smoke.json``) against the checked-in
full-grid baseline ``results/BENCH_kernel_events.json`` at the shared
grid cells, and fails when the measured calendar/reference speedup
falls below half the baseline's — i.e. when the two-lane scheduler
regressed by more than 2x relative to the preserved pre-dynkern
engine.  Gating on the engine *ratio* rather than wall-clock keeps the
check machine-independent: both engines run on the same host, so a
slow CI runner scales numerator and denominator alike.

Only workloads whose per-cell parameters are identical in smoke and
full runs are gated (``churn`` and ``removal``; the storm workload
shrinks its exchange count in smoke mode, so its cells are not
comparable across the two files).

Usage (what the CI kernel-smoke job runs)::

    DYNMPI_KERNEL_SMOKE=1 python -m pytest benchmarks/bench_kernel_events.py -q
    python benchmarks/check_kernel_regression.py
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS / "BENCH_kernel_events.json"
SMOKE = RESULTS / "BENCH_kernel_events_smoke.json"
ALLOWED_REGRESSION = 2.0
#: workloads with identical cell parameters in smoke and full runs
GATED_WORKLOADS = ("churn", "removal")


def _speedups(path: pathlib.Path) -> dict:
    cells = json.loads(path.read_text())["data"]
    by_cell: dict[tuple, dict[str, float]] = {}
    for c in cells:
        if c["workload"] not in GATED_WORKLOADS:
            continue
        key = (c["workload"], c["n_nodes"])
        by_cell.setdefault(key, {})[c["engine"]] = c["events_per_sec"]
    return {
        key: eng["calendar"] / eng["reference"]
        for key, eng in by_cell.items()
        if "calendar" in eng and "reference" in eng
    }


def main() -> int:
    for path in (BASELINE, SMOKE):
        if not path.exists():
            print(f"kernel-regression: missing {path}", file=sys.stderr)
            return 2
    baseline = _speedups(BASELINE)
    smoke = _speedups(SMOKE)
    shared = sorted(set(baseline) & set(smoke))
    if not shared:
        print("kernel-regression: no shared grid cells between baseline "
              "and smoke run", file=sys.stderr)
        return 2
    failed = False
    for cell in shared:
        floor = baseline[cell] / ALLOWED_REGRESSION
        status = "ok" if smoke[cell] >= floor else "REGRESSED"
        failed |= status == "REGRESSED"
        workload, n_nodes = cell
        print(f"kernel-regression: {workload} n_nodes={n_nodes} "
              f"speedup {smoke[cell]:.2f}x vs baseline {baseline[cell]:.2f}x "
              f"(floor {floor:.2f}x) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
