"""Figure 5 bench — Jacobi with multiple redistribution points.

Short (period=50) and Long (period=500) executions; policies
No Redist / Redist Once / Redist Twice.  Shape assertions:

* redistributing after the load arrives wins over never redistributing,
* the second redistribution is worthwhile for the Long run,
* for the Short run its benefit is marginal or negative (the paper:
  the redistribution cost negates the speedup).
"""

import pytest

from repro.experiments import format_figure5, run_figure5
from repro.experiments.harness import bench_scale

DEFAULT_SCALE = 0.5


def test_fig5_multiredist(benchmark, record_table):
    cells = benchmark.pedantic(
        lambda: run_figure5(scale=bench_scale(DEFAULT_SCALE)),
        rounds=1, iterations=1,
    )
    record_table("fig5_multiredist", format_figure5(cells), data=cells)
    by = {(c.period_len, c.policy): c for c in cells}
    shorts = sorted({c.period_len for c in cells})
    short, long_ = shorts[0], shorts[-1]

    # redistribution after period 1 helps in both runs
    for p in (short, long_):
        assert by[(p, "redist_once")].total < by[(p, "no_redist")].total

    # the second redistribution pays off for the long run...
    assert by[(long_, "redist_twice")].total < by[(long_, "redist_once")].total
    # ...but gains little or loses for the short one
    gain_short = (by[(short, "redist_once")].total
                  - by[(short, "redist_twice")].total)
    gain_long = (by[(long_, "redist_once")].total
                 - by[(long_, "redist_twice")].total)
    assert gain_long / by[(long_, "redist_once")].total > \
        gain_short / by[(short, "redist_once")].total
