"""Perf-smoke gate for the task farm.

Compares a fresh ``DYNMPI_FARM_SMOKE=1`` run of
``bench_farm_throughput.py`` (which writes
``results/BENCH_farm_throughput_smoke.json``) against the checked-in
full-grid baseline ``results/BENCH_farm_throughput.json`` at the
shared small cells.  ``jobs/sec`` is simulated throughput — a pure
function of the code, not the host — so the gate is tight: a smoke
cell may not fall below ``1/1.25`` of its baseline.  The gate also
re-asserts the headline claim from the baseline itself: RMA
self-scheduling beats master-dispatch self-scheduling at the largest
rank count.

Usage (what the CI farm-smoke job runs)::

    DYNMPI_FARM_SMOKE=1 python -m pytest benchmarks/bench_farm_throughput.py -q
    python benchmarks/check_farm_regression.py
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS / "BENCH_farm_throughput.json"
SMOKE = RESULTS / "BENCH_farm_throughput_smoke.json"
ALLOWED_REGRESSION = 1.25


def _rates(path: pathlib.Path) -> dict:
    cells = json.loads(path.read_text())["data"]
    return {
        (c["policy"], c["ranks"], c["n_jobs"], c["churn"]): c["jobs_per_sec"]
        for c in cells
    }


def main() -> int:
    for path in (BASELINE, SMOKE):
        if not path.exists():
            print(f"farm-regression: missing {path}", file=sys.stderr)
            return 2
    baseline = _rates(BASELINE)
    smoke = _rates(SMOKE)
    shared = sorted(set(baseline) & set(smoke))
    if not shared:
        print("farm-regression: no shared cells between baseline and "
              "smoke run", file=sys.stderr)
        return 2
    failed = False
    for cell in shared:
        floor = baseline[cell] / ALLOWED_REGRESSION
        status = "ok" if smoke[cell] >= floor else "REGRESSED"
        failed |= status == "REGRESSED"
        policy, ranks, n_jobs, churn = cell
        print(f"farm-regression: {policy} ranks={ranks} jobs={n_jobs} "
              f"churn={churn} {smoke[cell]:.0f} jobs/sec vs baseline "
              f"{baseline[cell]:.0f} (floor {floor:.0f}) {status}")

    # the headline acceptance claim, gated on the checked-in baseline
    top_ranks = max(r for (_, r, _, _) in baseline)
    rma = max(v for (p, r, _, c), v in baseline.items()
              if p == "rma" and r == top_ranks and c == 0)
    master = max(v for (p, r, _, c), v in baseline.items()
                 if p == "self" and r == top_ranks and c == 0)
    verdict = "ok" if rma > master else "VIOLATED"
    failed |= verdict == "VIOLATED"
    print(f"farm-regression: rma {rma:.0f} vs self {master:.0f} jobs/sec "
          f"at {top_ranks} ranks ({rma / master:.2f}x) {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
