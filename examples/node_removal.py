#!/usr/bin/env python
"""Node removal: when a loaded node hurts more than it helps.

Red/Black SOR has a low computation/communication ratio, and on the
(busy-polling) Ultra-Sparc cluster a node with several competing
processes delays every neighbor exchange.  Dyn-MPI monitors the
post-redistribution cycle times, predicts the cycle time of an
unloaded-only configuration, and physically removes the loaded node
when the prediction wins — reassigning relative ranks on the fly
(paper Sections 4.4 / 5.3).

Run:  python examples/node_removal.py
"""

import numpy as np

from repro.apps import SORConfig, sor_program, run_program
from repro.config import RuntimeSpec, ultrasparc_cluster
from repro.experiments.harness import steady_state_cycle_time
from repro.simcluster import Cluster, single_competitor


def run(allow_removal: bool):
    cluster = Cluster(ultrasparc_cluster(16))
    cfg = SORConfig(n=512, iters=100, materialized=False)
    spec = RuntimeSpec(
        allow_removal=allow_removal,
        post_redist_period=5,
        daemon_interval=0.05,
    )
    return run_program(
        cluster, sor_program, cfg,
        spec=spec, adaptive=True,
        load_script=single_competitor(0, start_cycle=8, count=3),
    )


def main() -> None:
    keep = run(allow_removal=False)
    drop = run(allow_removal=True)

    print("SOR 512x512 on 16 Ultra-Sparc nodes; 3 competing processes "
          "on node 0 from cycle 8\n")
    print(f"  keep the loaded node : total {keep.wall_time:7.3f} s, "
          f"steady cycle {steady_state_cycle_time(keep) * 1e3:6.2f} ms")
    print(f"  allow node removal   : total {drop.wall_time:7.3f} s, "
          f"steady cycle {steady_state_cycle_time(drop) * 1e3:6.2f} ms\n")

    for ev in drop.events:
        print(f"  cycle {ev.cycle:3d}: {ev.kind} "
              + str({k: np.round(v, 3) if isinstance(v, (list, float)) else v
                     for k, v in ev.detail.items()}))
    removed = [i for i, (s, e) in enumerate(drop.bounds) if e < s]
    print(f"\n  ranks with no rows at the end (physically removed): {removed}")


if __name__ == "__main__":
    main()
