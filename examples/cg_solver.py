#!/usr/bin/env python
"""Sparse CG under competing load — with real numerics.

Solves A x = 1 for a deterministic symmetric diagonally dominant
sparse matrix in Dyn-MPI's vector-of-lists format.  A competing
process appears mid-solve; the runtime redistributes matrix rows *and*
the solver vectors (data and metadata travel together, the point of
the paper's sparse design) without perturbing the arithmetic: the
distributed residual matches a sequential CG bit for bit.

Run:  python examples/cg_solver.py
"""

import numpy as np

from repro.apps import CGConfig, cg_program, run_program
from repro.apps.reference import cg_matrix_dense, cg_reference
from repro.config import RuntimeSpec, pentium_cluster
from repro.simcluster import Cluster, single_competitor


def main() -> None:
    cfg = CGConfig(n=96, iters=30, exact_math=True)
    cluster = Cluster(pentium_cluster(4))
    spec = RuntimeSpec(allow_removal=False, daemon_interval=0.002,
                       grace_period=3, post_redist_period=4)
    res = run_program(
        cluster, cg_program, cfg,
        spec=spec, adaptive=True,
        load_script=single_competitor(1, start_cycle=6),
    )

    A = cg_matrix_dense(cfg.n, nnz_target=cfg.nnz_target, seed=cfg.seed)
    x_ref, resid_ref = cg_reference(A, np.ones(cfg.n), cfg.iters)

    x = np.zeros(cfg.n)
    for out in res.per_rank:
        for g, v in out["x_local"].items():
            x[g] = v

    print(f"CG on a {cfg.n}x{cfg.n} sparse system, 4 nodes, competing "
          f"process on node 1 from cycle 6\n")
    print(f"  redistributions        : {res.n_redistributions}")
    print(f"  distributed residual   : {res.per_rank[0]['residual']:.3e}")
    print(f"  sequential residual    : {resid_ref:.3e}")
    print(f"  max |x_dist - x_seq|   : {np.abs(x - x_ref).max():.3e}")
    print(f"  simulated time         : {res.wall_time:.3f} s")
    assert np.allclose(x, x_ref, atol=1e-8), "distributed CG diverged!"
    print("\n  distributed solution matches the sequential solver.")


if __name__ == "__main__":
    main()
