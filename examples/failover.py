#!/usr/bin/env python
"""Failover: a node crashes mid-run and the job keeps the right answer.

Dyn-MPI's resilience layer (repro.resilience) treats a fail-stop node
crash as an *involuntary* Section 4.4 removal.  Every phase cycle each
rank ships a snapshot of its owned rows to its ring buddy (in-memory
neighbor checkpointing — the projection layout makes the snapshot one
``pack`` per array).  When the crashed node's ``dmpi_ps`` heartbeat
goes stale, the survivors excise it in lockstep: the buddy replays the
dead rank's rows from its checkpoint, and one redistribution rebalances
the survivors.

The proof of correctness is bitwise: the Jacobi grid after a mid-run
crash is *identical* to the grid of an undisturbed run, because the
replayed checkpoint is exactly the state at the failed cycle boundary.

Run:  python examples/failover.py
"""

import numpy as np

from repro.apps import JacobiConfig, jacobi_program, run_program
from repro.config import ClusterSpec, NetworkSpec, NodeSpec, ResilienceSpec, RuntimeSpec
from repro.resilience import node_crash
from repro.simcluster import Cluster

N_NODES = 4
CRASH_NODE = 1
CRASH_CYCLE = 15


def make_cluster():
    return Cluster(ClusterSpec(
        n_nodes=N_NODES,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
    ))


def run(crash: bool):
    cluster = make_cluster()
    if crash:
        cluster.install_failure_script(
            node_crash(CRASH_NODE, at_cycle=CRASH_CYCLE))
    spec = RuntimeSpec(
        grace_period=2, post_redist_period=3,
        allow_removal=True, drop_mode="physical", allow_rejoin=True,
        daemon_interval=0.001,
        resilience=ResilienceSpec(heartbeat_timeout=0.004),
    )
    cfg = JacobiConfig(n=64, iters=60, materialized=True, collect=True, seed=3)
    return run_program(cluster, jacobi_program, cfg, spec=spec)


def main() -> None:
    clean = run(crash=False)
    crashed = run(crash=True)

    print(f"Jacobi 64x64, 60 iterations on {N_NODES} nodes; node "
          f"{CRASH_NODE} crashes at cycle {CRASH_CYCLE}\n")
    print(f"  crash-free run : total {clean.wall_time:7.3f} s")
    print(f"  crashed run    : total {crashed.wall_time:7.3f} s\n")

    for ev in crashed.events:
        if ev.kind == "crash_recovery":
            d = ev.detail
            print(f"  cycle {ev.cycle:3d}: crash_recovery — dead world ranks "
                  f"{d['dead_world']}, checkpoint holders {d.get('holders')}, "
                  f"{d.get('replayed_installs', 0)} row-installs replayed "
                  f"in {ev.duration * 1e3:.2f} ms")

    ref = clean.per_rank[0]["grid"]
    survivors = [w for w, r in enumerate(crashed.per_rank) if r is not None]
    same = all(np.array_equal(crashed.per_rank[w]["grid"], ref)
               for w in survivors)
    print(f"\n  survivors: ranks {survivors}")
    print("  final grid bitwise-equal to the crash-free run: "
          + ("YES" if same else "NO"))
    if not same:
        raise SystemExit("recovery diverged!")


if __name__ == "__main__":
    main()
