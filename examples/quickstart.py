#!/usr/bin/env python
"""Quickstart: a Dyn-MPI program on a simulated non dedicated cluster.

Runs a small Jacobi iteration on 4 simulated nodes.  At cycle 10 a
competing process lands on node 0; the Dyn-MPI runtime detects the
load change through its dmpi_ps daemons, measures true per-iteration
times during a grace period, and redistributes rows with successive
balancing.  The same program is then run with adaptation off, so you
can see what the runtime bought.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import JacobiConfig, jacobi_program, run_program
from repro.config import RuntimeSpec, pentium_cluster
from repro.simcluster import Cluster, single_competitor


def run(adaptive: bool):
    cluster = Cluster(pentium_cluster(4))
    cfg = JacobiConfig(n=512, iters=80, materialized=False)
    spec = RuntimeSpec(allow_removal=False, daemon_interval=0.05)
    return run_program(
        cluster, jacobi_program, cfg,
        spec=spec, adaptive=adaptive,
        load_script=single_competitor(0, start_cycle=10),
    )


def main() -> None:
    adaptive = run(True)
    static = run(False)

    print("Jacobi 512x512, 80 cycles, 4 nodes; 1 competing process on "
          "node 0 from cycle 10\n")
    print(f"  without Dyn-MPI : {static.wall_time:7.3f} simulated seconds")
    print(f"  with Dyn-MPI    : {adaptive.wall_time:7.3f} simulated seconds")
    speedup = static.wall_time / adaptive.wall_time
    print(f"  speedup         : {speedup:7.2f}x\n")

    for ev in adaptive.events:
        shares = ev.detail.get("shares")
        print(f"  cycle {ev.cycle:3d}: {ev.kind}"
              + (f", shares={np.round(shares, 3)}" if shares else ""))
    print("\n  final row ranges per rank:")
    for rank, (s, e) in enumerate(adaptive.bounds):
        rows = e - s + 1 if e >= s else 0
        print(f"    rank {rank}: rows {s}..{e} ({rows} rows)"
              + ("   <- loaded node" if rank == 0 else ""))


if __name__ == "__main__":
    main()
