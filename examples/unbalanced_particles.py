#!/usr/bin/env python
"""Unbalanced computations: per-iteration timing in action.

The particle simulation's per-row cost depends on how many particles
the row holds, so a plain "equal rows per node" distribution is
unbalanced from the start.  During its grace period Dyn-MPI times each
iteration individually (gethrtime + min-filter, because the iterations
are shorter than /PROC's 10 ms granularity) and splits rows by
*measured work*, not by count — the hot node ends up with fewer rows.

Run:  python examples/unbalanced_particles.py
"""

import numpy as np

from repro.apps import ParticleConfig, particle_program, run_program
from repro.config import RuntimeSpec, pentium_cluster
from repro.simcluster import Cluster, CycleTrigger, LoadScript


def main() -> None:
    cluster = Cluster(pentium_cluster(4))
    cfg = ParticleConfig(
        rows=128, cols=64, steps=80,
        base_density=1.0, hot_rows=32, hot_factor=6.0,
    )
    # a short-lived competitor just to trigger a measurement+redistribution
    script = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=5, node=3, action="start"),
        CycleTrigger(cycle=30, node=3, action="stop"),
    ])
    spec = RuntimeSpec(allow_removal=False, daemon_interval=0.02)
    res = run_program(cluster, particle_program, cfg, spec=spec,
                      adaptive=True, load_script=script)

    print("Particle simulation, 128 rows x 64 cols on 4 nodes; rows 0-31 "
          "start with 6x the particles\n")
    ctx = res.job.contexts[0]
    w = ctx.row_weights
    if w is not None:
        print(f"  measured row weights (us): hot rows ~"
              f"{np.mean(w[:32]) * 1e6:.1f}, cold rows ~"
              f"{np.mean(w[64:]) * 1e6:.1f} "
              f"(timer: {ctx.last_estimate_source})")
    print("\n  final row ranges (hot node should hold fewer rows):")
    for rank, (s, e) in enumerate(res.bounds):
        rows = e - s + 1 if e >= s else 0
        marker = "  <- holds the hot region" if s == 0 else ""
        print(f"    rank {rank}: rows {s:3d}..{e:3d} ({rows:3d} rows){marker}")
    for ev in res.events:
        print(f"\n  cycle {ev.cycle}: {ev.kind}, "
              f"shares={np.round(ev.detail.get('shares', []), 3)}")


if __name__ == "__main__":
    main()
