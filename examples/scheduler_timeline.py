#!/usr/bin/env python
"""Visualize what a non dedicated node actually does.

Attaches the execution tracer to a 2-node Jacobi run with a competing
process, then prints each node's CPU timeline: the application ('r'
for rank processes), competing processes ('c'), and idle time ('.').
Watch node 0's application squeeze into the gaps once the competitor
arrives — and reclaim the CPU after Dyn-MPI shrinks its share.

Run:  python examples/scheduler_timeline.py
"""

from repro.apps import JacobiConfig, jacobi_program, run_program
from repro.config import RuntimeSpec, pentium_cluster
from repro.simcluster import Cluster, Tracer, single_competitor


def main() -> None:
    cluster = Cluster(pentium_cluster(2))
    tracer = Tracer(cluster).attach()
    cfg = JacobiConfig(n=256, iters=40, materialized=False)
    res = run_program(
        cluster, jacobi_program, cfg,
        spec=RuntimeSpec(allow_removal=False, daemon_interval=0.02),
        adaptive=True,
        load_script=single_competitor(0, start_cycle=10),
    )
    tracer.detach()

    total = res.wall_time
    print(f"Jacobi 256x256 on 2 nodes, competitor on node 0 from cycle 10 "
          f"({total:.3f} simulated seconds)\n")
    print("CPU timelines ('r'=application rank, 'c'=competing process, "
          "'.'=idle):\n")
    for node in range(2):
        print(" ", tracer.timeline(node, width=100))
    print()
    for ev in res.events:
        print(f"  cycle {ev.cycle}: {ev.kind} "
              f"shares={[round(s, 2) for s in ev.detail.get('shares', [])]}")
    app0 = tracer.busy_time(0, "rank")
    cp0 = tracer.busy_time(0, "cp")
    print(f"\n  node 0 CPU split: application {app0:.3f}s, "
          f"competitor {cp0:.3f}s, idle {total - app0 - cp0:.3f}s")


if __name__ == "__main__":
    main()
